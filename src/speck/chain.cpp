#include "speck/chain.h"

#include <algorithm>

#include "matrix/matrix_stats.h"

namespace speck {

std::vector<offset_t> chain_pair_products(const std::vector<Csr>& chain) {
  std::vector<offset_t> products;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    products.push_back(count_products(chain[i], chain[i + 1]));
  }
  return products;
}

ChainResult multiply_chain(std::vector<Csr> chain, SpGemmAlgorithm& algorithm) {
  ChainResult result;
  SPECK_REQUIRE(!chain.empty(), "chain must contain at least one matrix");
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    SPECK_REQUIRE(chain[i].cols() == chain[i + 1].rows(),
                  "chain matrices must be conformable");
  }

  while (chain.size() > 1) {
    const std::vector<offset_t> pair_products = chain_pair_products(chain);
    const auto cheapest =
        std::min_element(pair_products.begin(), pair_products.end());
    const auto index =
        static_cast<std::size_t>(cheapest - pair_products.begin());

    SpGemmResult step = algorithm.multiply(chain[index], chain[index + 1]);
    if (!step.ok()) {
      result.status = step.status;
      result.failure_reason = "contracting pair " + std::to_string(index) + ": " +
                              step.failure_reason;
      return result;
    }
    result.steps.push_back(ChainStep{index, *cheapest, step.seconds});
    result.seconds += step.seconds;
    result.total_products += *cheapest;

    chain[index] = std::move(step.c);
    chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(index) + 1);
  }
  result.c = std::move(chain.front());
  return result;
}

std::shared_ptr<const SpeckPlan> ChainPlanCache::find(
    const PlanFingerprint& fp) {
  return cache_.find(fp);
}

void ChainPlanCache::insert(SpeckPlan plan) {
  if (!plan.complete) return;
  cache_.insert(std::make_shared<const SpeckPlan>(std::move(plan)));
}

ChainResult multiply_chain(std::vector<Csr> chain, Speck& speck,
                           ChainPlanCache& cache) {
  ChainResult result;
  SPECK_REQUIRE(!chain.empty(), "chain must contain at least one matrix");
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    SPECK_REQUIRE(chain[i].cols() == chain[i + 1].rows(),
                  "chain matrices must be conformable");
  }

  while (chain.size() > 1) {
    const std::vector<offset_t> pair_products = chain_pair_products(chain);
    const auto cheapest =
        std::min_element(pair_products.begin(), pair_products.end());
    const auto index =
        static_cast<std::size_t>(cheapest - pair_products.begin());
    const Csr& a = chain[index];
    const Csr& b = chain[index + 1];

    const PlanFingerprint fp = plan_fingerprint(a, b, speck.config());
    SpGemmResult step;
    bool reused = false;
    if (const std::shared_ptr<const SpeckPlan> plan = cache.find(fp)) {
      step = speck.multiply_with_plan(*plan, a, b);
      reused = !speck.last_diagnostics().plan_fallback;
    } else {
      SpeckPlan fresh = speck.plan(a, b, &step);
      fresh.fingerprint = fp;
      cache.insert(std::move(fresh));
    }
    if (!step.ok()) {
      result.status = step.status;
      result.failure_reason = "contracting pair " + std::to_string(index) + ": " +
                              step.failure_reason;
      return result;
    }
    result.steps.push_back(ChainStep{index, *cheapest, step.seconds, reused});
    result.seconds += step.seconds;
    result.total_products += *cheapest;

    chain[index] = std::move(step.c);
    chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(index) + 1);
  }
  result.c = std::move(chain.front());
  return result;
}

}  // namespace speck
