#include "speck/masked_pass.h"

#include <algorithm>
#include <cstring>
#include <variant>

#include "common/bit_utils.h"
#include "common/prefix_sum.h"
#include "speck/hash_map.h"
#include "speck/kernels_detail.h"
#include "speck/local_lb.h"

namespace speck {
namespace {

/// Rows per parallel chunk (compaction); fixed like everywhere else so chunk
/// boundaries are identical at any thread count.
constexpr std::size_t kRowChunk = 256;

/// Accumulator method per row, re-deriving run_numeric's block-level
/// selection from the masked demand exactly like the estimator does from its
/// NNZ estimates: all-direct blocks stream, single-row blocks may go dense,
/// everything else hashes. The masked pass and the masked replay program
/// only need this for the traversal shape — every masked method adds into an
/// implicit zero, so the choice never changes a value bit.
std::vector<RowMethod> methods_for_masked_plan(
    const KernelContext& ctx, const BinPlan& plan,
    std::span<const index_t> masked_demand) {
  const auto rows = static_cast<std::size_t>(ctx.a->rows());
  std::vector<RowMethod> methods(rows, RowMethod::kHash);
  for (const BinPlan::Block& block : plan.blocks) {
    const std::span<const index_t> block_rows(
        plan.row_order.data() + block.begin, block.end - block.begin);
    if (block_rows.empty()) continue;
    bool all_direct = ctx.cfg->features.direct_rows;
    for (const index_t r : block_rows) {
      all_direct = all_direct && ctx.a->row_length(r) == 1;
    }
    if (all_direct) {
      for (const index_t r : block_rows) {
        methods[static_cast<std::size_t>(r)] = RowMethod::kDirect;
      }
      continue;
    }
    if (block_rows.size() == 1) {
      const index_t r = block_rows.front();
      RowMethod method = choose_numeric_method(
          ctx, r, masked_demand[static_cast<std::size_t>(r)],
          /*merged_block=*/false, block.config);
      if (method != RowMethod::kDense) method = RowMethod::kHash;
      methods[static_cast<std::size_t>(r)] = method;
    }
  }
  return methods;
}

/// Cost-model observables one block's masked rows accumulate.
struct MaskedRowCost {
  std::size_t touches = 0;     ///< intermediate products processed
  std::size_t mask_words = 0;  ///< mask columns read (seed / gather lists)
  std::size_t gathered = 0;    ///< mask columns probed by the dense gather
  std::size_t cells = 0;       ///< dense window cells zero-filled
  std::size_t written = 0;     ///< output elements emitted
};

/// Direct masked row (single A entry): a two-pointer sorted intersection of
/// the referenced B row with the mask row. Single product per column, so the
/// oracle's add-into-zero is literally 0.0 + av*bv.
index_t masked_direct_row(const KernelContext& ctx, index_t r, index_t* dst_cols,
                          value_t* dst_vals, MaskedRowCost& rc) {
  const auto a_cols = ctx.a->row_cols(r);
  const auto mask_cols = ctx.mask->row_cols(r);
  const value_t av = ctx.a->row_vals(r).front();
  const index_t k = a_cols.front();
  const auto b_cols = ctx.b->row_cols(k);
  const auto b_vals = ctx.b->row_vals(k);
  rc.touches += b_cols.size();
  index_t count = 0;
  std::size_t bi = 0;
  for (const index_t mc : mask_cols) {
    while (bi < b_cols.size() && b_cols[bi] < mc) ++bi;
    if (bi == b_cols.size()) break;
    if (b_cols[bi] == mc) {
      dst_cols[count] = mc;
      dst_vals[count] = 0.0 + av * b_vals[bi];
      ++count;
    }
  }
  return count;
}

/// Hash masked row: the mask columns are pre-seeded into the scratchpad map
/// as the only admissible keys, every product streams through
/// accumulate-if-present (a non-mask column misses and is dropped without
/// claiming a slot), and extraction probes the mask columns back in
/// ascending order — the output emerges sorted with no sort pass.
index_t masked_hash_row(const KernelContext& ctx, const KernelConfig& config,
                        index_t r, index_t* dst_cols, value_t* dst_vals,
                        KernelWorkspace& ws, sim::BlockCost& cost,
                        PassStats& counters, MaskedRowCost& rc) {
  const auto a_cols = ctx.a->row_cols(r);
  const auto a_vals = ctx.a->row_vals(r);
  const auto mask_cols = ctx.mask->row_cols(r);
  MaskedNumericAccumulator& acc = ws.masked_acc(
      ctx.effective_capacity(config.numeric_hash_capacity()), ctx.faults,
      ctx.simd);
  for (const index_t mc : mask_cols) {
    acc.seed(compound_key(0, mc, ctx.wide_keys));
  }
  const bool prefetch_gathers = ctx.simd != SimdBackend::kScalar;
  for (std::size_t i = 0; i < a_cols.size(); ++i) {
    const index_t k = a_cols[i];
    if (prefetch_gathers && i + 1 < a_cols.size()) {
      const auto next = static_cast<std::size_t>(
          ctx.b->row_offsets()[static_cast<std::size_t>(a_cols[i + 1])]);
      simd::prefetch(ctx.b->col_indices().data() + next);
      simd::prefetch(ctx.b->values().data() + next);
    }
    const auto b_cols = ctx.b->row_cols(k);
    const auto b_vals = ctx.b->row_vals(k);
    rc.touches += b_cols.size();
    for (std::size_t j = 0; j < b_cols.size(); ++j) {
      acc.accumulate(compound_key(0, b_cols[j], ctx.wide_keys),
                     a_vals[i] * b_vals[j]);
    }
  }
  index_t count = 0;
  for (const index_t mc : mask_cols) {
    value_t v;
    if (acc.lookup_touched(compound_key(0, mc, ctx.wide_keys), &v)) {
      dst_cols[count] = mc;
      dst_vals[count] = v;
      ++count;
    }
  }
  detail::charge_hash_activity(cost, acc, counters);
  return count;
}

/// Dense masked row: ascending window passes over [col_min, col_max] with
/// per-A-entry cursors (each product visited exactly once, like the exact
/// dense kernel), then a vectorized gather over the mask columns falling in
/// the window. The window is zero-filled at every pass start — separate
/// mask_* scratch buffers, so the exact dense path's self-cleaning window
/// invariant is untouched — which makes every accumulation 0.0 + p.
index_t masked_dense_row(const KernelContext& ctx, const KernelConfig& config,
                         index_t r, index_t* dst_cols, value_t* dst_vals,
                         DenseScratch& scratch, MaskedRowCost& rc) {
  const Csr& b = *ctx.b;
  const auto a_cols = ctx.a->row_cols(r);
  const auto a_vals = ctx.a->row_vals(r);
  const auto mask_cols = ctx.mask->row_cols(r);
  const auto ri = static_cast<std::size_t>(r);
  const index_t col_min = ctx.analysis->col_min[ri];
  const index_t col_max = ctx.analysis->col_max[ri];
  const std::size_t window_columns =
      ctx.effective_capacity(config.dense_numeric_capacity());
  const auto window = static_cast<index_t>(window_columns);

  if (scratch.mask_cursor.size() < a_cols.size()) {
    scratch.mask_cursor.resize(a_cols.size());
  }
  for (std::size_t i = 0; i < a_cols.size(); ++i) {
    scratch.mask_cursor[i] =
        b.row_offsets()[static_cast<std::size_t>(a_cols[i])];
  }
  if (scratch.mask_window_vals.size() < window_columns) {
    scratch.mask_window_vals.resize(window_columns);
  }
  if (scratch.mask_occupied.size() < window_columns + simd::kMaskedGatherPad) {
    scratch.mask_occupied.resize(window_columns + simd::kMaskedGatherPad, 0);
  }
  if (scratch.mask_gather_vals.size() < mask_cols.size()) {
    scratch.mask_gather_vals.resize(mask_cols.size());
    scratch.mask_gather_touched.resize(mask_cols.size());
  }
  const auto b_cols = b.col_indices();
  const auto b_vals = b.values();

  index_t count = 0;
  std::size_t mp = 0;  // next unconsumed mask column
  while (mp < mask_cols.size() && mask_cols[mp] < col_min) ++mp;
  for (index_t window_start = col_min; window_start <= col_max;
       window_start += window) {
    const auto window_end = static_cast<index_t>(std::min<std::int64_t>(
        static_cast<std::int64_t>(window_start) + window - 1, col_max));
    const auto cells = static_cast<std::size_t>(window_end - window_start) + 1;
    std::fill_n(scratch.mask_window_vals.data(), cells, 0.0);
    std::memset(scratch.mask_occupied.data(), 0, cells);
    rc.cells += cells;

    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const auto row_end =
          b.row_offsets()[static_cast<std::size_t>(a_cols[i]) + 1];
      offset_t& cur = scratch.mask_cursor[i];
      while (cur < row_end &&
             b_cols[static_cast<std::size_t>(cur)] <= window_end) {
        const index_t c = b_cols[static_cast<std::size_t>(cur)];
        const auto slot = static_cast<std::size_t>(c - window_start);
        scratch.mask_occupied[slot] = 1;
        scratch.mask_window_vals[slot] +=
            a_vals[i] * b_vals[static_cast<std::size_t>(cur)];
        ++cur;
        ++rc.touches;
      }
    }

    const std::size_t seg_begin = mp;
    while (mp < mask_cols.size() && mask_cols[mp] <= window_end) ++mp;
    const std::size_t n = mp - seg_begin;
    if (n == 0) continue;
    rc.gathered += n;
    simd::masked_window_gather(
        mask_cols.data() + seg_begin, n, window_start,
        scratch.mask_window_vals.data(), scratch.mask_occupied.data(),
        scratch.mask_gather_vals.data(), scratch.mask_gather_touched.data(),
        ctx.simd);
    for (std::size_t i = 0; i < n; ++i) {
      if (scratch.mask_gather_touched[i] != 0) {
        dst_cols[count] = mask_cols[seg_begin + i];
        dst_vals[count] = scratch.mask_gather_vals[i];
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

MaskedNumericOutcome run_numeric_masked(const KernelContext& ctx,
                                        const BinPlan& plan,
                                        std::span<const index_t> masked_demand) {
  SPECK_REQUIRE(ctx.mask != nullptr, "masked numeric pass requires a mask");
  MaskedNumericOutcome out;
  const auto rows = static_cast<std::size_t>(ctx.a->rows());
  out.row_nnz.assign(rows, 0);
  out.stats.global_pool_bytes =
      detail::global_pool_bytes(ctx, plan, /*symbolic=*/false);

  // Staging: every row gets a demand-sized slot. The cap is a hard bound —
  // a row can never touch more mask columns than min(products, mask nnz) —
  // so unlike the estimated pass there is no overrun bookkeeping and no
  // fallback. The scratch persists across calls and only grows; every
  // element is written before it is read.
  thread_local std::vector<offset_t> masked_offsets;
  if (masked_offsets.size() < rows + 1) masked_offsets.resize(rows + 1);
  masked_offsets[0] = 0;
  simd::widen_i32_to_i64(masked_demand.data(), masked_offsets.data() + 1, rows,
                         ctx.simd);
  inclusive_prefix_sum(std::span<offset_t>(masked_offsets.data() + 1, rows),
                       ctx.simd);
  const auto staging_total = static_cast<std::size_t>(masked_offsets[rows]);
  thread_local std::vector<index_t> staging_cols;
  thread_local std::vector<value_t> staging_vals;
  if (staging_cols.size() < staging_total) staging_cols.resize(staging_total);
  if (staging_vals.size() < staging_total) staging_vals.resize(staging_total);
  // Snapshot raw pointers for the worker lambdas: naming a thread_local
  // inside them would resolve through each *worker's* TLS (empty vectors),
  // not the coordinating thread's scratch.
  const offset_t* const masked_offsets_ptr = masked_offsets.data();
  index_t* const staging_cols_ptr = staging_cols.data();
  value_t* const staging_vals_ptr = staging_vals.data();

  const std::vector<RowMethod> methods =
      methods_for_masked_plan(ctx, plan, masked_demand);

  detail::execute_block_plan<std::monostate>(
      ctx, plan, "numeric_masked/", out.stats,
      [&](const KernelContext& bctx, const sim::Launch& launch,
          const KernelConfig& config, int /*config_index*/,
          std::span<const index_t> block_rows, PassStats& counters,
          std::monostate& /*payload*/, KernelWorkspace& ws) {
        auto cost = launch.make_block(config.threads, config.scratchpad_bytes);
        const BlockRowStats row_stats = detail::block_stats(bctx, block_rows);
        const LocalLbDecision lb =
            choose_group_size(config.threads, row_stats, bctx.cfg->features);

        MaskedRowCost rc;
        for (const index_t r : block_rows) {
          const auto ri = static_cast<std::size_t>(r);
          const RowMethod method = methods[ri];
          const auto base = static_cast<std::size_t>(masked_offsets_ptr[ri]);
          rc.mask_words +=
              static_cast<std::size_t>(bctx.mask->row_length(r));
          index_t actual = 0;
          // A row with no products or an empty mask row is empty; skipping
          // it early keeps huge-mask/empty-A rows from paying a seed pass.
          if (masked_demand[ri] > 0) {
            switch (method) {
              case RowMethod::kDirect:
                actual = masked_direct_row(bctx, r, staging_cols_ptr + base,
                                           staging_vals_ptr + base, rc);
                break;
              case RowMethod::kDense:
                actual = masked_dense_row(bctx, config, r,
                                          staging_cols_ptr + base,
                                          staging_vals_ptr + base, ws.dense(),
                                          rc);
                break;
              case RowMethod::kHash:
                actual = masked_hash_row(bctx, config, r,
                                         staging_cols_ptr + base,
                                         staging_vals_ptr + base, ws, cost,
                                         counters, rc);
                break;
            }
          }
          SPECK_ASSERT(actual <= masked_demand[ri],
                       "masked row exceeded its demand bound");
          out.row_nnz[ri] = actual;
          rc.written += static_cast<std::size_t>(actual);
          switch (method) {
            case RowMethod::kDirect: ++counters.direct_rows; break;
            case RowMethod::kDense: ++counters.dense_rows; break;
            case RowMethod::kHash: ++counters.hash_rows; break;
          }
        }

        detail::charge_row_sweep(cost, bctx, block_rows, lb.group_size,
                                 /*numeric=*/true, ws);
        cost.global_coalesced(rc.mask_words);  // mask columns (seed/gather)
        cost.smem(2.0 * static_cast<double>(rc.touches));  // window scatter
        cost.issued(static_cast<double>(rc.touches), 2.0);
        cost.smem(static_cast<double>(rc.cells));  // window zero-fill
        cost.issued(static_cast<double>(rc.gathered), 2.0);  // masked gather
        cost.global_coalesced(rc.written);
        cost.global_coalesced64(rc.written);
        return cost;
      },
      [](const std::monostate&) {});

  // Compaction: exact offsets from the actual counts, then every non-empty
  // row moves from its demand-sized staging slot to its final position.
  std::vector<offset_t> offsets(rows + 1, 0);
  simd::widen_i32_to_i64(out.row_nnz.data(), offsets.data() + 1, rows,
                         ctx.simd);
  inclusive_prefix_sum(std::span<offset_t>(offsets.data() + 1, rows), ctx.simd);
  std::vector<index_t> out_cols(static_cast<std::size_t>(offsets.back()));
  std::vector<value_t> out_vals(static_cast<std::size_t>(offsets.back()));

  pool_or_global(ctx.pool).parallel_for(
      rows, kRowChunk, [&](std::size_t begin, std::size_t end, int /*worker*/) {
        for (std::size_t r = begin; r < end; ++r) {
          const auto n = static_cast<std::size_t>(out.row_nnz[r]);
          if (n == 0) continue;
          const auto src = static_cast<std::size_t>(masked_offsets_ptr[r]);
          const auto dst = static_cast<std::size_t>(offsets[r]);
          std::memcpy(out_cols.data() + dst, staging_cols_ptr + src,
                      n * sizeof(index_t));
          std::memcpy(out_vals.data() + dst, staging_vals_ptr + src,
                      n * sizeof(value_t));
        }
      });

  out.c = Csr(ctx.a->rows(), ctx.b->cols(), std::move(offsets),
              std::move(out_cols), std::move(out_vals));
  return out;
}

}  // namespace speck
