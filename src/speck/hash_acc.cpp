#include "speck/hash_acc.h"

namespace speck {

SymbolicHashAccumulator::SymbolicHashAccumulator(std::size_t capacity,
                                                 const FaultInjector* faults)
    : local_(capacity), faults_(faults) {}

void SymbolicHashAccumulator::insert(key64_t key) {
  if (!in_global_) {
    if (!local_.full() && !forced_overflow()) {
      local_.insert_key(key);
      // Preemptively move once completely full: binning sizes maps so this
      // only happens for the unbounded largest-configuration rows.
      if (local_.full()) spill();
      return;
    }
    spill();
  }
  ++global_inserts_;
  global_.insert(key);
}

std::vector<index_t> SymbolicHashAccumulator::row_counts(int rows,
                                                         bool wide_keys) const {
  std::vector<index_t> counts(static_cast<std::size_t>(rows), 0);
  auto count_key = [&](key64_t key) {
    const int local_row = key_local_row(key, wide_keys);
    SPECK_ASSERT(local_row < rows, "compound key local row out of range");
    ++counts[static_cast<std::size_t>(local_row)];
  };
  for (const auto& entry : local_.extract()) count_key(entry.key);
  for (const key64_t key : global_) count_key(key);
  return counts;
}

void SymbolicHashAccumulator::spill() {
  in_global_ = true;
  for (const auto& entry : local_.extract()) global_.insert(entry.key);
  moved_entries_ += local_.size();
  local_.reset();
  // New keys collect in the global map from here on; the paper re-fills the
  // local map and bulk-moves, which has the same modeled cost shape (we
  // charge per-insert global atomics instead).
}

NumericHashAccumulator::NumericHashAccumulator(std::size_t capacity,
                                               const FaultInjector* faults)
    : local_(capacity), faults_(faults) {}

void NumericHashAccumulator::accumulate(key64_t key, value_t value) {
  if (!in_global_) {
    if (!local_.full() && !forced_overflow()) {
      local_.accumulate(key, value);
      if (local_.full()) spill();
      return;
    }
    spill();
  }
  ++global_inserts_;
  global_[key] += value;
}

std::vector<DeviceHashMap::Entry> NumericHashAccumulator::extract() const {
  std::vector<DeviceHashMap::Entry> entries = local_.extract();
  entries.reserve(entries.size() + global_.size());
  for (const auto& [key, value] : global_) {
    entries.push_back(DeviceHashMap::Entry{key, value});
  }
  return entries;
}

void NumericHashAccumulator::spill() {
  in_global_ = true;
  for (const auto& entry : local_.extract()) global_[entry.key] += entry.value;
  moved_entries_ += local_.size();
  local_.reset();
}

}  // namespace speck
