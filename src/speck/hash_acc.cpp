#include "speck/hash_acc.h"

namespace speck {

void SymbolicHashAccumulator::begin_block(std::size_t capacity,
                                          const FaultInjector* faults,
                                          SimdBackend simd) {
  local_.reconfigure(capacity);
  local_.set_backend(simd);
  global_.clear();
  global_.set_backend(simd);
  faults_ = faults;
  in_global_ = false;
  moved_entries_ = 0;
  global_inserts_ = 0;
}

void SymbolicHashAccumulator::insert(key64_t key) {
  if (!in_global_) {
    if (!local_.full() && !forced_overflow()) {
      local_.insert_key(key);
      // Preemptively move once completely full: binning sizes maps so this
      // only happens for the unbounded largest-configuration rows.
      if (local_.full()) spill();
      return;
    }
    spill();
  }
  ++global_inserts_;
  global_.insert(key);
}

void SymbolicHashAccumulator::row_counts_into(int rows, bool wide_keys,
                                              std::vector<index_t>& counts) const {
  counts.assign(static_cast<std::size_t>(rows), 0);
  const auto count_key = [&](key64_t key, value_t) {
    const int local_row = key_local_row(key, wide_keys);
    SPECK_ASSERT(local_row < rows, "compound key local row out of range");
    ++counts[static_cast<std::size_t>(local_row)];
  };
  local_.for_each(count_key);
  global_.for_each(count_key);
}

std::vector<index_t> SymbolicHashAccumulator::row_counts(int rows,
                                                         bool wide_keys) const {
  std::vector<index_t> counts;
  row_counts_into(rows, wide_keys, counts);
  return counts;
}

void SymbolicHashAccumulator::spill() {
  in_global_ = true;
  local_.for_each([&](key64_t key, value_t) { global_.insert(key); });
  moved_entries_ += local_.size();
  local_.reset();
  // New keys collect in the global map from here on; the paper re-fills the
  // local map and bulk-moves, which has the same modeled cost shape (we
  // charge per-insert global atomics instead).
}

void NumericHashAccumulator::begin_block(std::size_t capacity,
                                         const FaultInjector* faults,
                                         SimdBackend simd) {
  local_.reconfigure(capacity);
  local_.set_backend(simd);
  global_.clear();
  global_.set_backend(simd);
  faults_ = faults;
  in_global_ = false;
  moved_entries_ = 0;
  global_inserts_ = 0;
}

void NumericHashAccumulator::accumulate(key64_t key, value_t value) {
  if (!in_global_) {
    if (!local_.full() && !forced_overflow()) {
      local_.accumulate(key, value);
      if (local_.full()) spill();
      return;
    }
    spill();
  }
  ++global_inserts_;
  global_.accumulate(key, value);
}

void NumericHashAccumulator::extract_into(
    std::vector<DeviceHashMap::Entry>& out) const {
  out.clear();
  local_.extract_into(out);
  global_.for_each([&](key64_t key, value_t value) {
    out.push_back(DeviceHashMap::Entry{key, value});
  });
}

std::vector<DeviceHashMap::Entry> NumericHashAccumulator::extract() const {
  std::vector<DeviceHashMap::Entry> entries;
  entries.reserve(entry_count());
  extract_into(entries);
  return entries;
}

void NumericHashAccumulator::spill() {
  in_global_ = true;
  local_.for_each(
      [&](key64_t key, value_t value) { global_.accumulate(key, value); });
  moved_entries_ += local_.size();
  local_.reset();
}

void MaskedNumericAccumulator::begin_block(std::size_t capacity,
                                           const FaultInjector* faults,
                                           SimdBackend simd) {
  local_.reconfigure(capacity);
  local_.set_backend(simd);
  global_.clear();
  global_.set_backend(simd);
  faults_ = faults;
  in_global_ = false;
  moved_entries_ = 0;
  global_inserts_ = 0;
}

void MaskedNumericAccumulator::seed(key64_t key) {
  if (!in_global_) {
    if (!local_.full() && !forced_overflow()) {
      local_.seed_key(key);
      if (local_.full()) spill();
      return;
    }
    spill();
  }
  ++global_inserts_;
  global_.seed(key);
}

void MaskedNumericAccumulator::accumulate(key64_t key, value_t value) {
  if (!in_global_) {
    local_.accumulate_if_present(key, value);
    return;
  }
  global_.accumulate_if_present(key, value);
}

bool MaskedNumericAccumulator::lookup_touched(key64_t key, value_t* value) {
  if (!in_global_) return local_.lookup_touched(key, value);
  return global_.lookup_touched(key, value);
}

void MaskedNumericAccumulator::spill() {
  in_global_ = true;
  // Only seeds can be in flight here (streaming never inserts), so every
  // moved entry is an untouched zero and re-seeding preserves state.
  local_.for_each([&](key64_t key, value_t) { global_.seed(key); });
  moved_entries_ += local_.size();
  local_.reset();
}

}  // namespace speck
