#include "speck/kernels.h"

#include <algorithm>
#include <optional>

#include "common/alloc_counter.h"
#include "common/bit_utils.h"
#include "speck/dense_acc.h"
#include "speck/hash_acc.h"
#include "speck/kernels_detail.h"
#include "speck/local_lb.h"

namespace speck {

using detail::block_stats;
using detail::charge_hash_activity;
using detail::charge_row_sweep;
using detail::global_pool_bytes;

RowMethod choose_symbolic_method(const KernelContext& ctx, index_t row,
                                 bool merged_block, const KernelConfig& config) {
  (void)config;
  const auto r = static_cast<std::size_t>(row);
  if (ctx.cfg->features.direct_rows && ctx.a->row_length(row) == 1) {
    return RowMethod::kDirect;
  }
  if (!merged_block && ctx.cfg->features.dense_accumulation) {
    const auto largest_hash = static_cast<double>(
        ctx.effective_capacity(ctx.configs->back().symbolic_hash_capacity()));
    if (static_cast<double>(ctx.analysis->products[r]) >
        ctx.cfg->symbolic_dense_factor * largest_hash) {
      return RowMethod::kDense;
    }
  }
  return RowMethod::kHash;
}

namespace {

/// Executes one symbolic block: fills `out_row_nnz` for the block's rows
/// (disjoint across blocks), counts methods into `stats` (merged into the
/// pass totals serially afterwards) and returns the block's simulated cost.
/// All transient state lives in the worker's `ws` — after warm-up this
/// function performs no heap allocations.
sim::BlockCost run_symbolic_block(const KernelContext& ctx,
                                  const sim::Launch& launch,
                                  const KernelConfig& config,
                                  std::span<const index_t> rows,
                                  std::vector<index_t>& out_row_nnz,
                                  PassStats& stats, KernelWorkspace& ws) {
  const bool merged = rows.size() > 1;
  auto cost = launch.make_block(config.threads, config.scratchpad_bytes);
  const BlockRowStats row_stats = block_stats(ctx, rows);
  const LocalLbDecision lb =
      choose_group_size(config.threads, row_stats, ctx.cfg->features);

  // A block either runs the shared hash map over all of its rows, or —
  // for single-row blocks — may use dense / direct instead.
  bool all_direct = ctx.cfg->features.direct_rows;
  for (const index_t r : rows) all_direct = all_direct && ctx.a->row_length(r) == 1;

  if (all_direct && !rows.empty()) {
    // Count via B row offsets only; no element access needed. The two
    // offsets of a row are adjacent — one 32-byte sector per row.
    for (const index_t r : rows) {
      const auto a_cols = ctx.a->row_cols(r);
      index_t nnz = 0;
      if (!a_cols.empty()) nnz = ctx.b->row_length(a_cols.front());
      out_row_nnz[static_cast<std::size_t>(r)] = nnz;
      cost.global_segmented(2, 1);
      ++stats.direct_rows;
    }
    cost.issued(static_cast<double>(rows.size()), 2.0);
    cost.global_coalesced(rows.size());
    return cost;
  }

  if (!merged && !rows.empty() &&
      choose_symbolic_method(ctx, rows.front(), merged, config) ==
          RowMethod::kDense) {
    const index_t r = rows.front();
    const auto a_cols = ctx.a->row_cols(r);
    const auto result = dense_accumulate_row(
        *ctx.b, a_cols, {}, ctx.analysis->col_min[static_cast<std::size_t>(r)],
        ctx.analysis->col_max[static_cast<std::size_t>(r)],
        ctx.effective_capacity(config.dense_symbolic_capacity()),
        /*numeric=*/false, ws.dense(), ctx.simd);
    out_row_nnz[static_cast<std::size_t>(r)] =
        static_cast<index_t>(result.cols.size());
    ++stats.dense_rows;
    charge_row_sweep(cost, ctx, rows, lb.group_size, /*numeric=*/false, ws);
    cost.smem_atomic(static_cast<double>(result.element_touches));  // atomicOr
    cost.issued(static_cast<double>(result.element_touches));
    cost.issued(static_cast<double>(result.cells_scanned) / 32.0, 2.0);
    cost.smem(static_cast<double>(result.cells_scanned) / 32.0);
    cost.issued(static_cast<double>(result.passes) *
                static_cast<double>(a_cols.size()));
    cost.global_coalesced(static_cast<std::size_t>(result.cols.size()) / 32 + 1);
    return cost;
  }

  // Hash path: one shared map with compound keys for all rows of the
  // block (5-bit local row | 27-bit column).
  SymbolicHashAccumulator& acc = ws.symbolic_acc(
      ctx.effective_capacity(config.symbolic_hash_capacity()), ctx.faults,
      ctx.simd);
  const bool prefetch_gathers = ctx.simd != SimdBackend::kScalar;
  for (std::size_t local = 0; local < rows.size(); ++local) {
    const index_t r = rows[local];
    const auto a_cols = ctx.a->row_cols(r);
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      if (prefetch_gathers && i + 1 < a_cols.size()) {
        // Hide the latency of the next B-row gather behind this one's
        // inserts; never changes what is inserted.
        const auto next = static_cast<std::size_t>(a_cols[i + 1]);
        simd::prefetch(ctx.b->col_indices().data() +
                       static_cast<std::size_t>(ctx.b->row_offsets()[next]));
      }
      for (const index_t col : ctx.b->row_cols(a_cols[i])) {
        acc.insert(compound_key(static_cast<int>(local), col, ctx.wide_keys));
      }
    }
  }
  std::vector<index_t>& counts = ws.row_counts();
  acc.row_counts_into(static_cast<int>(rows.size()), ctx.wide_keys, counts);
  for (std::size_t local = 0; local < rows.size(); ++local) {
    out_row_nnz[static_cast<std::size_t>(rows[local])] = counts[local];
    ++stats.hash_rows;
  }
  charge_row_sweep(cost, ctx, rows, lb.group_size, /*numeric=*/false, ws);
  charge_hash_activity(cost, acc, stats);
  // Extraction: scan the whole map to count per-row NNZ.
  cost.issued(static_cast<double>(config.symbolic_hash_capacity()));
  cost.smem(static_cast<double>(config.symbolic_hash_capacity()));
  cost.global_coalesced(rows.size());
  return cost;
}

}  // namespace

SymbolicOutcome run_symbolic(const KernelContext& ctx, const BinPlan& plan) {
  SymbolicOutcome out;
  out.row_nnz.assign(static_cast<std::size_t>(ctx.a->rows()), 0);
  out.stats.global_pool_bytes = global_pool_bytes(ctx, plan, /*symbolic=*/true);
  detail::execute_block_plan<std::monostate>(
      ctx, plan, "symbolic/", out.stats,
      [&](const KernelContext& bctx, const sim::Launch& launch,
          const KernelConfig& config, int /*config_index*/,
          std::span<const index_t> rows, PassStats& counters,
          std::monostate& /*payload*/, KernelWorkspace& ws) {
        return run_symbolic_block(bctx, launch, config, rows, out.row_nnz,
                                  counters, ws);
      },
      [](const std::monostate&) {});
  return out;
}


}  // namespace speck
