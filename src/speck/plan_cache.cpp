#include "speck/plan_cache.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"

namespace speck {

std::uint64_t plan_key_hash(const PlanFingerprint& fp) {
  std::uint64_t h = 0x5eC4'CAc4'Ed00ULL;
  const auto fold = [&h](std::uint64_t v) {
    h ^= v;
    h = splitmix64(h);
  };
  fold(static_cast<std::uint64_t>(fp.a_rows));
  fold(static_cast<std::uint64_t>(fp.a_cols));
  fold(static_cast<std::uint64_t>(fp.b_rows));
  fold(static_cast<std::uint64_t>(fp.b_cols));
  fold(static_cast<std::uint64_t>(fp.a_nnz));
  fold(static_cast<std::uint64_t>(fp.b_nnz));
  fold(fp.config_hash);
  fold(fp.a_pattern_hash);
  fold(fp.b_pattern_hash);
  if (fp.masked) {
    // Unmasked fingerprints skip the mask folds entirely so their hashes —
    // and any stored key built from them — are unchanged by the mask fields'
    // existence.
    fold(static_cast<std::uint64_t>(fp.mask_rows));
    fold(static_cast<std::uint64_t>(fp.mask_cols));
    fold(static_cast<std::uint64_t>(fp.mask_nnz));
    fold(fp.mask_pattern_hash);
  }
  return h;
}

PlanCache::PlanCache(int shards, std::size_t limit_bytes)
    : limit_bytes_(limit_bytes) {
  const auto count = static_cast<std::size_t>(std::max(shards, 1));
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::~PlanCache() = default;

void PlanCache::lru_unlink(Shard& shard, Entry* entry) {
  if (entry->lru_prev != nullptr) {
    entry->lru_prev->lru_next = entry->lru_next;
  } else {
    shard.lru_head = entry->lru_next;
  }
  if (entry->lru_next != nullptr) {
    entry->lru_next->lru_prev = entry->lru_prev;
  } else {
    shard.lru_tail = entry->lru_prev;
  }
  entry->lru_prev = nullptr;
  entry->lru_next = nullptr;
}

void PlanCache::lru_push_front(Shard& shard, Entry* entry) {
  entry->lru_prev = nullptr;
  entry->lru_next = shard.lru_head;
  if (shard.lru_head != nullptr) shard.lru_head->lru_prev = entry;
  shard.lru_head = entry;
  if (shard.lru_tail == nullptr) shard.lru_tail = entry;
}

void PlanCache::evict_tail(Shard& shard) {
  Entry* victim = shard.lru_tail;
  SPECK_ASSERT(victim != nullptr, "evict_tail on an empty shard");
  lru_unlink(shard, victim);
  shard.bytes -= victim->bytes;
  total_bytes_.fetch_sub(victim->bytes, std::memory_order_relaxed);
  ++shard.evictions;

  const std::uint64_t key = plan_key_hash(victim->key);
  auto [begin, end] = shard.index.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second.get() == victim) {
      shard.index.erase(it);
      return;
    }
  }
  SPECK_ASSERT(false, "LRU entry missing from its shard index");
}

std::shared_ptr<const SpeckPlan> PlanCache::find(const PlanFingerprint& fp) {
  const std::uint64_t key = plan_key_hash(fp);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [begin, end] = shard.index.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    Entry* entry = it->second.get();
    if (entry->key.matches_full(fp)) {
      lru_unlink(shard, entry);
      lru_push_front(shard, entry);
      ++shard.hits;
      return entry->plan;
    }
  }
  ++shard.misses;
  return nullptr;
}

std::shared_ptr<const SpeckPlan> PlanCache::insert(
    std::shared_ptr<const SpeckPlan> plan) {
  if (plan == nullptr) return plan;
  if (!plan->complete) {
    // Incomplete plans cannot be replayed, so retaining them only burns
    // budget; the caller still gets its pointer back.
    const std::uint64_t key = plan_key_hash(plan->fingerprint);
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.rejected_inserts;
    return plan;
  }

  const std::uint64_t key = plan_key_hash(plan->fingerprint);
  Shard& shard = shard_for(key);
  const std::size_t plan_bytes = plan->byte_size();
  std::lock_guard<std::mutex> lock(shard.mutex);

  auto [begin, end] = shard.index.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    Entry* entry = it->second.get();
    if (entry->key.matches_full(plan->fingerprint)) {
      // Insert race: the first writer won; converge on its instance.
      lru_unlink(shard, entry);
      lru_push_front(shard, entry);
      return entry->plan;
    }
  }

  // Make room within this shard. Eviction is shard-local by design: cross-
  // shard eviction would need lock ordering across shards and reintroduce
  // the very contention sharding removes.
  while (total_bytes_.load(std::memory_order_relaxed) + plan_bytes >
             limit_bytes_ &&
         shard.lru_tail != nullptr) {
    evict_tail(shard);
  }
  if (total_bytes_.load(std::memory_order_relaxed) + plan_bytes >
      limit_bytes_) {
    ++shard.rejected_inserts;
    return plan;
  }

  auto entry = std::make_unique<Entry>();
  entry->key = plan->fingerprint;
  entry->plan = plan;
  entry->bytes = plan_bytes;
  Entry* raw = entry.get();
  shard.index.emplace(key, std::move(entry));
  lru_push_front(shard, raw);
  shard.bytes += plan_bytes;
  total_bytes_.fetch_add(plan_bytes, std::memory_order_relaxed);
  ++shard.insertions;
  return plan;
}

std::size_t PlanCache::evict(std::size_t max_entries) {
  std::size_t evicted = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    while (evicted < max_entries && shard.lru_tail != nullptr) {
      evict_tail(shard);
      ++evicted;
    }
    if (evicted >= max_entries) break;
  }
  return evicted;
}

void PlanCache::clear() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    total_bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.index.clear();
    shard.lru_head = nullptr;
    shard.lru_tail = nullptr;
    shard.bytes = 0;
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.rejected_inserts += shard.rejected_inserts;
    out.bytes += shard.bytes;
    out.entries += shard.index.size();
  }
  return out;
}

std::size_t PlanCache::entries() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.index.size();
  }
  return total;
}

}  // namespace speck
