#include "speck/tuner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/prng.h"

namespace speck {
namespace {

/// Which of the four combinations a threshold set selects for a sample.
std::pair<int, int> decide(const TuningSample& sample, const SpeckThresholds& t) {
  const bool symbolic =
      lb_decision(sample.symbolic_decision, t.symbolic, t.symbolic_large);
  const bool numeric =
      lb_decision(sample.numeric_decision, t.numeric, t.numeric_large);
  return {symbolic ? 1 : 0, numeric ? 1 : 0};
}

double best_seconds(const TuningSample& sample) {
  double best = sample.seconds[0][0];
  for (int s = 0; s < 2; ++s) {
    for (int n = 0; n < 2; ++n) best = std::min(best, sample.seconds[s][n]);
  }
  return best;
}

/// Candidate values for the line search.
const std::array<double, 12> kRatioGrid = {1.0, 1.3,  2.0,  3.0,  4.0,  6.0,
                                           8.0, 10.5, 16.0, 25.0, 39.2, 64.0};
const std::array<index_t, 10> kRowsGrid = {0,    500,   1000,  2000,  5431,
                                           10000, 15000, 23006, 28000, 50000};

}  // namespace

TuningSample measure_tuning_sample(Speck& speck, const Csr& a, const Csr& b) {
  TuningSample sample;
  const SpeckFeatures saved = speck.config().features;
  for (int s = 0; s < 2; ++s) {
    for (int n = 0; n < 2; ++n) {
      speck.config().features.global_lb_symbolic =
          s == 1 ? GlobalLbMode::kAlwaysOn : GlobalLbMode::kAlwaysOff;
      speck.config().features.global_lb_numeric =
          n == 1 ? GlobalLbMode::kAlwaysOn : GlobalLbMode::kAlwaysOff;
      const SpGemmResult result = speck.multiply(a, b);
      SPECK_REQUIRE(result.ok(), "tuning sample multiplication failed");
      sample.seconds[s][n] = result.seconds;
      sample.symbolic_decision = speck.last_diagnostics().symbolic_decision;
      sample.numeric_decision = speck.last_diagnostics().numeric_decision;
    }
  }
  speck.config().features = saved;
  return sample;
}

double tuning_loss(std::span<const TuningSample> samples,
                   const SpeckThresholds& thresholds) {
  if (samples.empty()) return 1.0;
  double total = 0.0;
  for (const TuningSample& sample : samples) {
    const auto [s, n] = decide(sample, thresholds);
    total += sample.seconds[s][n] / best_seconds(sample);
  }
  return total / static_cast<double>(samples.size());
}

TuningResult tune_thresholds(std::span<const TuningSample> samples,
                             SpeckThresholds start, int sweeps) {
  SpeckThresholds current = start;
  double current_loss = tuning_loss(samples, current);

  // The four threshold pairs. Ratio and row-count gate the decision jointly
  // (both must clear), so each pair is line-searched over the joint grid —
  // independent coordinate sweeps stall in local minima.
  const std::array<LoadBalanceThresholds*, 4> pairs = {
      &current.symbolic, &current.symbolic_large, &current.numeric,
      &current.numeric_large};
  const std::array<const LoadBalanceThresholds*, 4> priors = {
      &start.symbolic, &start.symbolic_large, &start.numeric,
      &start.numeric_large};

  // Tie-break: when two grid points give the same loss (the training set is
  // uninformative in that region), prefer the one closest to the starting
  // point, i.e. keep the prior. Distances are measured in log-ratio and
  // sqrt-rows space.
  const auto distance = [](const LoadBalanceThresholds& x,
                           const LoadBalanceThresholds& y) {
    const double dr = std::log(x.ratio + 1.0) - std::log(y.ratio + 1.0);
    const double dn = std::sqrt(static_cast<double>(x.min_rows)) -
                      std::sqrt(static_cast<double>(y.min_rows));
    return dr * dr + dn * dn * 1e-4;
  };

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      LoadBalanceThresholds* pair = pairs[p];
      const LoadBalanceThresholds prior = *priors[p];
      LoadBalanceThresholds best_value = *pair;
      double best_distance = distance(best_value, prior);
      for (const double ratio : kRatioGrid) {
        for (const index_t min_rows : kRowsGrid) {
          *pair = LoadBalanceThresholds{ratio, min_rows};
          const double loss = tuning_loss(samples, current);
          const double d = distance(*pair, prior);
          if (loss < current_loss - 1e-12 ||
              (loss < current_loss + 1e-12 && d < best_distance)) {
            current_loss = std::min(current_loss, loss);
            best_value = *pair;
            best_distance = d;
          }
        }
      }
      *pair = best_value;
    }
  }

  TuningResult result;
  result.thresholds = current;
  result.mean_slowdown = current_loss;
  int best_picks = 0;
  for (const TuningSample& sample : samples) {
    const auto [s, n] = decide(sample, current);
    if (sample.seconds[s][n] <= best_seconds(sample) * (1.0 + 1e-12)) ++best_picks;
  }
  result.best_pick_fraction =
      samples.empty() ? 0.0
                      : static_cast<double>(best_picks) /
                            static_cast<double>(samples.size());
  return result;
}

std::vector<std::vector<std::size_t>> k_folds(std::size_t count, int k,
                                              std::uint64_t seed) {
  SPECK_REQUIRE(k > 0, "k must be positive");
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = count; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < count; ++i) {
    folds[i % static_cast<std::size_t>(k)].push_back(order[i]);
  }
  return folds;
}

}  // namespace speck
