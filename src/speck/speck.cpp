#include "speck/speck.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/bit_utils.h"
#include "common/prefix_sum.h"
#include "matrix/matrix_stats.h"
#include "sim/memory_tracker.h"
#include "speck/estimator.h"
#include "speck/masked_pass.h"

namespace speck {
namespace {

// The replay program packs each C value slot with the assign-first flag
// into one uint32 (NumericReplayProgram::kAssignFirst), so indices must fit
// in 31 bits.
constexpr std::uint64_t kMaxReplayIndex = 1ULL << 31;

void validate_multiply_inputs(const Csr& a, const Csr& b) {
  a.validate();
  b.validate();
  if (!a.sorted_within_rows()) {
    throw BadInput("matrix A has unsorted rows (CSR requires ascending "
                   "column indices; call sort_rows())",
                   "Speck::multiply");
  }
  if (!b.sorted_within_rows()) {
    throw BadInput("matrix B has unsorted rows (CSR requires ascending "
                   "column indices; call sort_rows())",
                   "Speck::multiply");
  }
}

/// The output mask must describe positions of C = A*B, i.e. be rows(A) x
/// cols(B). The dimension check is unconditional (it is O(1) and a wrong-
/// shape mask silently corrupts the product); the O(nnz) structural checks
/// run under validate_inputs like A's and B's.
void validate_mask_input(const Csr& a, const Csr& b, const Csr& mask,
                         bool full) {
  if (mask.rows() != a.rows() || mask.cols() != b.cols()) {
    throw BadInput("output mask must be rows(A) x cols(B) = " +
                       std::to_string(a.rows()) + "x" + std::to_string(b.cols()) +
                       "; got " + std::to_string(mask.rows()) + "x" +
                       std::to_string(mask.cols()),
                   "Speck::multiply_masked");
  }
  if (!full) return;
  mask.validate();
  if (!mask.sorted_within_rows()) {
    throw BadInput("mask has unsorted rows (CSR requires ascending column "
                   "indices; call sort_rows())",
                   "Speck::multiply_masked");
  }
}

/// Why `plan` must not be replayed against (a, b) under `cfg`, or empty.
/// Shared by the fallback (legacy) and reject (concurrent) replay entries.
std::string plan_reject_reason(const SpeckPlan& plan, const Csr& a,
                               const Csr& b, const SpeckConfig& cfg) {
  if (!plan.complete) {
    return plan.incomplete_reason.empty() ? "plan is incomplete"
                                          : plan.incomplete_reason;
  }
  const Csr* mask = cfg.mask.get();
  if (plan.fingerprint.masked && mask == nullptr) {
    return "plan is masked but no mask is configured (set SpeckConfig::mask "
           "to the mask the plan was built with)";
  }
  const PlanFingerprint now =
      mask != nullptr
          ? plan_fingerprint_masked(a, b, *mask, cfg,
                                    /*with_pattern_hashes=*/cfg.validate_inputs)
          : plan_fingerprint(a, b, cfg,
                             /*with_pattern_hashes=*/cfg.validate_inputs);
  const bool match = cfg.validate_inputs
                         ? now.matches_full(plan.fingerprint)
                         : now.matches_quick(plan.fingerprint);
  if (!match) {
    return "structural fingerprint mismatch: plan is stale for these "
           "inputs or this configuration";
  }
  return {};
}

}  // namespace

ThreadPool* Speck::host_pool() {
  if (config_.host_threads == 0) {
    pool_.reset();
    return nullptr;
  }
  if (!pool_ || pool_->thread_count() != config_.host_threads) {
    pool_ = std::make_unique<ThreadPool>(config_.host_threads);
  }
  return pool_.get();
}

void Speck::ensure_team_b(const Csr& b, const KernelContext& ctx) {
  const int parts = ctx.partitions;
  team_b_.resize(static_cast<std::size_t>(parts));
  // One chunk per partition with identity boundaries: team t's lanes copy
  // replica t, so (with pinned threads on a NUMA host) the replica's pages
  // are first-touched on the team's node. Copy-assignment into a retained
  // replica reuses its vector capacity — no steady-state allocations.
  std::vector<std::size_t> bounds(static_cast<std::size_t>(parts) + 1);
  for (int p = 0; p <= parts; ++p) {
    bounds[static_cast<std::size_t>(p)] = static_cast<std::size_t>(p);
  }
  pool_or_global(ctx.pool).partitioned_for(
      static_cast<std::size_t>(parts), 1, bounds, /*steal=*/false,
      [&](std::size_t begin, std::size_t, int, int) { team_b_[begin] = b; });
}

bool Speck::plan_worth_caching(const Csr& a, const Csr& b) const {
  if (static_cast<std::uint64_t>(a.nnz()) >= kMaxReplayIndex ||
      static_cast<std::uint64_t>(b.nnz()) >= kMaxReplayIndex) {
    return false;
  }
  // estimate_plan_bytes is O(nnz_A) — cheap relative to the full multiply
  // the cache is about to amortize — and bounds the plan's real byte_size(),
  // so a structure admitted here can actually be retained by the cache.
  return estimate_plan_bytes(a, b) <= config_.plan_cache_limit_bytes;
}

PlanCache& Speck::plan_cache() {
  const int shards = std::max(config_.plan_cache_shards, 1);
  if (!transparent_cache_ || transparent_cache_->shards() != shards ||
      transparent_cache_->limit_bytes() != config_.plan_cache_limit_bytes) {
    transparent_cache_ =
        std::make_unique<PlanCache>(shards, config_.plan_cache_limit_bytes);
  }
  return *transparent_cache_;
}

SpGemmResult Speck::multiply(const Csr& a, const Csr& b) {
  if (config_.mask != nullptr) return multiply_masked(a, b, *config_.mask);
  if (!config_.plan_cache) {
    has_last_structure_ = false;
    transparent_cache_.reset();
    return multiply_full(a, b, nullptr);
  }
  PlanCache& cache = plan_cache();
  const PlanFingerprint fp = plan_fingerprint(a, b, config_);
  if (const std::shared_ptr<const SpeckPlan> plan = cache.find(fp)) {
    SpGemmResult result = replay_plan(*plan, a, b);
    diagnostics_.plan_cache_hit = true;
    return result;
  }
  // Build the plan only once the same structure shows up twice in a row:
  // one-off multiplies never pay the capture cost, iterative workloads pay
  // it exactly once.
  const bool build = has_last_structure_ && fp.matches_full(last_structure_) &&
                     plan_worth_caching(a, b);
  last_structure_ = fp;
  has_last_structure_ = true;
  if (!build) return multiply_full(a, b, nullptr);
  auto plan = std::make_shared<SpeckPlan>();
  plan->fingerprint = fp;
  SpGemmResult result = multiply_full(a, b, plan.get());
  if (result.ok() && plan->complete) cache.insert(std::move(plan));
  return result;
}

SpGemmResult Speck::multiply_masked(const Csr& a, const Csr& b,
                                    const Csr& mask) {
  if (!config_.plan_cache) {
    has_last_structure_ = false;
    transparent_cache_.reset();
    return multiply_masked_full(a, b, mask, nullptr);
  }
  PlanCache& cache = plan_cache();
  const PlanFingerprint fp = plan_fingerprint_masked(a, b, mask, config_);
  if (const std::shared_ptr<const SpeckPlan> plan = cache.find(fp)) {
    SpGemmResult result = replay_plan(*plan, a, b);
    diagnostics_.plan_cache_hit = true;
    return result;
  }
  // Same build-on-second-sight policy as the unmasked path; the masked
  // fingerprint keeps masked and unmasked structures from ever colliding.
  const bool build = has_last_structure_ && fp.matches_full(last_structure_) &&
                     plan_worth_caching(a, b);
  last_structure_ = fp;
  has_last_structure_ = true;
  if (!build) return multiply_masked_full(a, b, mask, nullptr);
  auto plan = std::make_shared<SpeckPlan>();
  plan->fingerprint = fp;
  SpGemmResult result = multiply_masked_full(a, b, mask, plan.get());
  if (result.ok() && plan->complete) cache.insert(std::move(plan));
  return result;
}

SpeckPlan Speck::plan(const Csr& a, const Csr& b, SpGemmResult* full_result,
                      const CancelToken* cancel) {
  SpeckPlan plan;
  plan.fingerprint = plan_fingerprint(a, b, config_);
  // When the caller does not want the full multiply result, the capture
  // block may steal the C pattern arrays from it instead of copying.
  SpGemmResult result =
      multiply_full(a, b, &plan, cancel, /*steal_pattern=*/full_result == nullptr);
  if (!result.ok() && plan.incomplete_reason.empty()) {
    plan.incomplete_reason = "planning run failed: " + result.failure_reason;
  }
  if (full_result != nullptr) *full_result = std::move(result);
  return plan;
}

SpeckPlan Speck::plan_masked(const Csr& a, const Csr& b, const Csr& mask,
                             SpGemmResult* full_result,
                             const CancelToken* cancel) {
  SpeckPlan plan;
  plan.fingerprint = plan_fingerprint_masked(a, b, mask, config_);
  SpGemmResult result = multiply_masked_full(
      a, b, mask, &plan, cancel, /*steal_pattern=*/full_result == nullptr);
  if (!result.ok() && plan.incomplete_reason.empty()) {
    plan.incomplete_reason = "planning run failed: " + result.failure_reason;
  }
  if (full_result != nullptr) *full_result = std::move(result);
  return plan;
}

SpGemmResult Speck::multiply_with_plan(const SpeckPlan& plan, const Csr& a,
                                       const Csr& b) {
  std::string reject = plan_reject_reason(plan, a, b, config_);
  if (reject.empty()) return replay_plan(plan, a, b);
  SpGemmResult result = multiply_full(a, b, nullptr);
  diagnostics_.plan_fallback = true;
  diagnostics_.plan_fallback_reason = std::move(reject);
  return result;
}

SpGemmResult Speck::multiply_with_plan(const SpeckPlan& plan, const Csr& a,
                                       const Csr& b,
                                       SpeckDiagnostics* diag) const {
  const std::string reject = plan_reject_reason(plan, a, b, config_);
  if (!reject.empty()) {
    // No fallback here: the full pipeline needs this instance's mutable
    // state, which concurrent callers must never touch. The caller decides
    // whether to re-plan.
    if (diag != nullptr) *diag = SpeckDiagnostics{};
    SpGemmResult result;
    result.status = SpGemmStatus::kUnsupported;
    result.failure_reason = "plan rejected: " + reject;
    return result;
  }
  return replay_plan_into(plan, a, b, &serial_pool(), diag, nullptr, nullptr);
}

SpGemmResult Speck::replay_values_into(const SpeckPlan& plan, const Csr& a,
                                       const Csr& b, std::span<value_t> out,
                                       SpeckDiagnostics* diag) const {
  const std::string reject = plan_reject_reason(plan, a, b, config_);
  if (!reject.empty()) {
    if (diag != nullptr) *diag = SpeckDiagnostics{};
    SpGemmResult result;
    result.status = SpGemmStatus::kUnsupported;
    result.failure_reason = "plan rejected: " + reject;
    return result;
  }
  SPECK_REQUIRE(out.size() == static_cast<std::size_t>(plan.c_nnz()),
                "replay_values_into: output span must be sized to the plan's "
                "c_nnz");
  return replay_plan_into(plan, a, b, &serial_pool(), diag, nullptr, &out);
}

SpGemmResult Speck::replay_plan(const SpeckPlan& plan, const Csr& a,
                                const Csr& b) {
  return replay_plan_into(plan, a, b, host_pool(), &diagnostics_, &trace_,
                          nullptr);
}

SpGemmResult Speck::replay_plan_into(const SpeckPlan& plan, const Csr& a,
                                     const Csr& b, ThreadPool* pool,
                                     SpeckDiagnostics* diag,
                                     sim::LaunchTrace* trace,
                                     std::span<value_t>* external) const {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  if (config_.validate_inputs) validate_multiply_inputs(a, b);
  std::optional<FaultInjector> injector;
  if (config_.faults.enabled()) injector.emplace(config_.faults);
  const FaultInjector* faults = injector ? &*injector : nullptr;

  SpGemmResult result;
  // The pipeline is a deterministic function of structure and configuration
  // — values never steer control flow — so the capturing run's diagnostics
  // are exactly what a full run on these inputs would report. Only the
  // hot-path allocation counter is measured live below.
  if (diag != nullptr) {
    *diag = plan.diagnostics;
    diag->plan_used = true;
    diag->plan_cache_hit = false;
    diag->plan_fallback = false;
    diag->plan_fallback_reason.clear();
  }
  if (trace != nullptr) trace->clear();

  sim::MemoryTracker memory(faults != nullptr
                                ? faults->cap_memory(device_.global_memory_bytes)
                                : device_.global_memory_bytes);
  if (!memory.allocate(a.byte_size() + b.byte_size())) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "input matrices exceed device memory";
    return result;
  }
  const auto c_nnz = static_cast<std::size_t>(plan.c_nnz());
  const std::size_t c_bytes =
      (static_cast<std::size_t>(plan.fingerprint.a_rows) + 1) * sizeof(offset_t) +
      c_nnz * (sizeof(index_t) + sizeof(value_t));
  if (!memory.allocate(c_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "output matrix exceeds device memory";
    return result;
  }
  // The replayed numeric kernels use the same transient device buffers the
  // full numeric pass did.
  if (plan.diagnostics.numeric.global_pool_bytes > 0) {
    if (!memory.allocate(plan.diagnostics.numeric.global_pool_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "global hash pool exceeds device memory";
      return result;
    }
    memory.release(plan.diagnostics.numeric.global_pool_bytes);
  }
  if (plan.diagnostics.radix_sorted_elements > 0) {
    const auto sort_bytes =
        static_cast<std::size_t>(plan.diagnostics.radix_sorted_elements) *
        (sizeof(index_t) + sizeof(value_t));
    if (!memory.allocate(sort_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "radix sort buffers exceed device memory";
      return result;
    }
    memory.release(sort_bytes);
  }

  const SimdBackend simd = simd::resolve_backend(config_.simd_backend);
  // A 1-thread pool means the caller wants the replay on its own thread
  // (the concurrent service path); the serial kernel also owns no per-call
  // containers, keeping that path allocation-free.
  const bool serial = pool != nullptr && pool->thread_count() == 1;
  std::size_t replay_allocs = 0;
  if (external != nullptr) {
    // Caller-owned values; the dense-row program ops accumulate, so the
    // buffer starts from zero. result.c stays empty — the pattern is shared
    // via the plan.
    std::fill(external->begin(), external->end(), value_t{0});
    replay_allocs =
        serial ? replay_numeric_values_serial(a, b, plan.program, *external, simd)
               : replay_numeric_values(a, b, plan.program, pool, *external, simd);
  } else {
    std::vector<value_t> values(c_nnz, 0.0);
    replay_allocs =
        serial ? replay_numeric_values_serial(a, b, plan.program, values, simd)
               : replay_numeric_values(a, b, plan.program, pool, values, simd);
    result.c = Csr(plan.fingerprint.a_rows, plan.fingerprint.b_cols,
                   plan.c_row_offsets, plan.c_col_indices, std::move(values));
  }
  if (diag != nullptr) diag->numeric.hot_path_allocs = replay_allocs;

  if (trace != nullptr) {
    for (const sim::LaunchResult& launch : plan.replay_trace) {
      trace->record(launch);
    }
  }
  result.timeline.add(sim::Stage::kNumeric, plan.numeric_seconds);
  result.timeline.add(sim::Stage::kSorting, plan.sorting_seconds);
  result.seconds = result.timeline.total_seconds();
  result.peak_memory_bytes = memory.peak_bytes();
  return result;
}

SpGemmResult Speck::multiply_full(const Csr& a, const Csr& b,
                                  SpeckPlan* capture,
                                  const CancelToken* cancel,
                                  bool steal_pattern) {
  // Cooperative cancellation: polled at stage boundaries on this (the
  // coordinating) thread only — pool workers never throw. A kernel that has
  // started runs to completion; the check before each stage keeps an
  // expired request from entering the next one.
  const auto poll_cancel = [cancel](const char* phase) {
    if (cancel != nullptr) cancel->check(phase);
  };
  poll_cancel("admission");
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  if (config_.validate_inputs) validate_multiply_inputs(a, b);
  std::optional<FaultInjector> injector;
  if (config_.faults.enabled()) injector.emplace(config_.faults);
  const FaultInjector* faults = injector ? &*injector : nullptr;

  SpGemmResult result;
  diagnostics_ = SpeckDiagnostics{};
  diagnostics_.wide_keys = b.cols() > kMaxColumns32Bit;
  trace_.clear();

  sim::MemoryTracker memory(faults != nullptr
                                ? faults->cap_memory(device_.global_memory_bytes)
                                : device_.global_memory_bytes);
  // Input matrices are resident for the duration of the multiplication
  // (the paper lists this as spECK's limitation, §7).
  if (!memory.allocate(a.byte_size() + b.byte_size())) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "input matrices exceed device memory";
    return result;
  }

  KernelContext ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.cfg = &config_;
  ctx.configs = &kernel_configs_;
  ctx.device = &device_;
  ctx.model = &model_;
  ctx.wide_keys = diagnostics_.wide_keys;
  ctx.trace = &trace_;
  ctx.pool = host_pool();
  ctx.workspaces = &workspaces_;
  ctx.faults = faults;
  ctx.simd = simd::resolve_backend(config_.simd_backend);
  ctx.partitions = resolve_partitions(config_.partitions);
  ctx.partition_steal = config_.partition_steal;
  diagnostics_.partition.partitions = ctx.partitions;
  ctx.partition_diag = &diagnostics_.partition;
  if (ctx.partitions > 1) {
    ctx.team_workspaces = &team_workspaces_;
    if (config_.numa_local_b) {
      ensure_team_b(b, ctx);
      ctx.team_b = &team_b_;
    }
  }

  if (resolve_planning(config_.planning) == PlanningMode::kEstimated) {
    return multiply_estimated(a, b, capture, cancel, ctx, memory,
                              steal_pattern);
  }

  // Stage 1: lightweight row analysis (Algorithm 1).
  sim::Launch analysis_launch("row_analysis", device_, model_);
  RowAnalysis analysis = analyze_rows(a, b, analysis_launch, ctx.pool, faults);
  ctx.analysis = &analysis;
  diagnostics_.products = analysis.total_products;
  {
    sim::LaunchResult finished = analysis_launch.finish();
    result.timeline.add(sim::Stage::kAnalysis, finished.seconds);
    trace_.record(std::move(finished));
  }
  const std::size_t analysis_bytes =
      static_cast<std::size_t>(a.rows()) *
      (sizeof(offset_t) + 3 * sizeof(index_t));
  if (!memory.allocate(analysis_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "row analysis buffers exceed device memory";
    return result;
  }

  poll_cancel("row analysis");
  // Stage 2: conditional global load balancing for the symbolic pass,
  // binning on the conservative product counts.
  sim::Launch symbolic_lb_launch("symbolic_lb", device_, model_);
  const GlobalLbInputs symbolic_inputs{std::span<const offset_t>(analysis.products),
                                       /*symbolic=*/true};
  BinPlan symbolic_plan =
      plan_global_lb(symbolic_inputs, kernel_configs_, config_, symbolic_lb_launch);
  diagnostics_.symbolic_decision =
      lb_decision_stats(symbolic_inputs, kernel_configs_, config_);
  diagnostics_.symbolic_lb_used = symbolic_plan.used_load_balancer;
  diagnostics_.symbolic_blocks = static_cast<int>(symbolic_plan.blocks.size());
  if (symbolic_plan.used_load_balancer) {
    sim::LaunchResult finished = symbolic_lb_launch.finish();
    result.timeline.add(sim::Stage::kSymbolicLoadBalance, finished.seconds);
    trace_.record(std::move(finished));
    if (!memory.allocate(symbolic_plan.lb_memory_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "load balancer buffers exceed device memory";
      return result;
    }
  }

  poll_cancel("symbolic load balancing");
  // Stage 3: symbolic SpGEMM (exact C row sizes).
  SymbolicOutcome symbolic = run_symbolic(ctx, symbolic_plan);
  diagnostics_.symbolic = symbolic.stats;
  result.timeline.add(sim::Stage::kSymbolic, symbolic.stats.seconds);
  if (symbolic.stats.global_pool_bytes > 0 &&
      !memory.allocate(symbolic.stats.global_pool_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "global hash pool exceeds device memory";
    return result;
  }
  if (symbolic.stats.global_pool_bytes > 0) {
    memory.release(symbolic.stats.global_pool_bytes);
  }

  // Output row offsets via exclusive prefix sum; the C allocation itself is
  // not timed (identical for every method) but counts towards peak memory.
  offset_t c_nnz = 0;
  for (const index_t nnz : symbolic.row_nnz) c_nnz += nnz;
  const std::size_t c_bytes =
      (static_cast<std::size_t>(a.rows()) + 1) * sizeof(offset_t) +
      static_cast<std::size_t>(c_nnz) * (sizeof(index_t) + sizeof(value_t));
  if (!memory.allocate(c_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "output matrix exceeds device memory";
    return result;
  }

  poll_cancel("symbolic pass");
  // Stage 4: conditional global load balancing for the numeric pass, using
  // the exact row sizes inflated by the hash fill limit (66%).
  std::vector<offset_t> numeric_entries(symbolic.row_nnz.size());
  for (std::size_t r = 0; r < symbolic.row_nnz.size(); ++r) {
    numeric_entries[r] = static_cast<offset_t>(
        static_cast<double>(symbolic.row_nnz[r]) / config_.max_numeric_fill + 1.0);
    if (faults != nullptr) {
      // Perturb the numeric binning input too — like the analysis estimates
      // this only shifts rows between kernel configurations.
      numeric_entries[r] =
          faults->scale_estimate(static_cast<index_t>(r), numeric_entries[r]);
    }
  }
  sim::Launch numeric_lb_launch("numeric_lb", device_, model_);
  const GlobalLbInputs numeric_inputs{std::span<const offset_t>(numeric_entries),
                                      /*symbolic=*/false};
  BinPlan numeric_plan =
      plan_global_lb(numeric_inputs, kernel_configs_, config_, numeric_lb_launch);
  diagnostics_.numeric_decision =
      lb_decision_stats(numeric_inputs, kernel_configs_, config_);
  diagnostics_.numeric_lb_used = numeric_plan.used_load_balancer;
  diagnostics_.numeric_blocks = static_cast<int>(numeric_plan.blocks.size());
  if (numeric_plan.used_load_balancer) {
    sim::LaunchResult finished = numeric_lb_launch.finish();
    result.timeline.add(sim::Stage::kNumericLoadBalance, finished.seconds);
    trace_.record(std::move(finished));
    if (!memory.allocate(numeric_plan.lb_memory_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "load balancer buffers exceed device memory";
      return result;
    }
  }

  poll_cancel("numeric load balancing");
  // Stage 5 + 6: numeric SpGEMM and the sorting pass.
  const std::size_t numeric_trace_mark = trace_.launches().size();
  NumericOutcome numeric = run_numeric(ctx, numeric_plan, symbolic.row_nnz);
  diagnostics_.numeric = numeric.stats;
  diagnostics_.radix_sorted_elements = numeric.radix_sorted_elements;
  result.timeline.add(sim::Stage::kNumeric, numeric.stats.seconds);
  result.timeline.add(sim::Stage::kSorting, numeric.sorting_seconds);
  if (numeric.stats.global_pool_bytes > 0) {
    if (!memory.allocate(numeric.stats.global_pool_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "global hash pool exceeds device memory";
      return result;
    }
    memory.release(numeric.stats.global_pool_bytes);
  }
  if (numeric.radix_sorted_elements > 0) {
    // Double-buffer for the device radix sort.
    const auto sort_bytes = static_cast<std::size_t>(numeric.radix_sorted_elements) *
                            (sizeof(index_t) + sizeof(value_t));
    if (!memory.allocate(sort_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "radix sort buffers exceed device memory";
      return result;
    }
    memory.release(sort_bytes);
  }

  result.c = std::move(numeric.c);
  result.seconds = result.timeline.total_seconds();
  result.peak_memory_bytes = memory.peak_bytes();

  if (capture != nullptr) {
    SpeckPlan& plan = *capture;
    plan.wide_keys = ctx.wide_keys;
    plan.row_nnz = std::move(symbolic.row_nnz);
    if (steal_pattern) {
      // The caller promised to discard the result: take the pattern arrays
      // instead of copying them (the values are dropped either way).
      std::vector<value_t> discarded_values;
      result.c.take_arrays(plan.c_row_offsets, plan.c_col_indices,
                           discarded_values);
    } else {
      const std::span<const offset_t> c_offsets = result.c.row_offsets();
      const std::span<const index_t> c_cols = result.c.col_indices();
      plan.c_row_offsets.assign(c_offsets.begin(), c_offsets.end());
      plan.c_col_indices.assign(c_cols.begin(), c_cols.end());
    }
    if (static_cast<std::uint64_t>(a.nnz()) >= kMaxReplayIndex ||
        static_cast<std::uint64_t>(b.nnz()) >= kMaxReplayIndex ||
        static_cast<std::uint64_t>(c_nnz) >= kMaxReplayIndex) {
      plan.incomplete_reason =
          "matrix too large for the 32-bit replay program";
    } else {
      plan.program = build_replay_program(ctx, numeric_plan, plan.row_nnz,
                                          plan.c_row_offsets,
                                          plan.c_col_indices);
      plan.complete = true;
    }
    plan.analysis = std::move(analysis);
    plan.symbolic_plan = std::move(symbolic_plan);
    plan.numeric_plan = std::move(numeric_plan);
    plan.diagnostics = diagnostics_;
    plan.numeric_seconds = numeric.stats.seconds;
    plan.sorting_seconds = numeric.sorting_seconds;
    const std::vector<sim::LaunchResult>& launches = trace_.launches();
    plan.replay_trace.assign(
        launches.begin() + static_cast<std::ptrdiff_t>(numeric_trace_mark),
        launches.end());
    plan.inspect_seconds =
        result.timeline.seconds(sim::Stage::kAnalysis) +
        result.timeline.seconds(sim::Stage::kSymbolicLoadBalance) +
        result.timeline.seconds(sim::Stage::kSymbolic) +
        result.timeline.seconds(sim::Stage::kNumericLoadBalance);
  }
  return result;
}

SpGemmResult Speck::multiply_estimated(const Csr& a, const Csr& b,
                                       SpeckPlan* capture,
                                       const CancelToken* cancel,
                                       KernelContext& ctx,
                                       sim::MemoryTracker& memory,
                                       bool steal_pattern) {
  const auto poll_cancel = [cancel](const char* phase) {
    if (cancel != nullptr) cancel->check(phase);
  };
  SpGemmResult result;
  diagnostics_.estimated_planning = true;
  const FaultInjector* faults = ctx.faults;

  // Stage 1': row estimation — the exact O(nnz_A) lightweight analysis plus
  // a bounded per-row sampling pass for the NNZ estimates; what it *skips*
  // is the O(products) symbolic hashing pass below.
  sim::Launch estimator_launch("row_estimator", device_, model_);
  RowEstimate estimate =
      estimate_rows(a, b, config_, estimator_launch, ctx.pool, faults);
  ctx.analysis = &estimate.analysis;
  diagnostics_.products = estimate.analysis.total_products;
  {
    sim::LaunchResult finished = estimator_launch.finish();
    result.timeline.add(sim::Stage::kAnalysis, finished.seconds);
    trace_.record(std::move(finished));
  }
  const std::size_t analysis_bytes =
      static_cast<std::size_t>(a.rows()) *
      (sizeof(offset_t) + 4 * sizeof(index_t));
  if (!memory.allocate(analysis_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "row estimation buffers exceed device memory";
    return result;
  }

  poll_cancel("row estimation");
  // The symbolic load balancer and the symbolic pass are skipped entirely:
  // numeric binning runs straight off the NNZ estimates, inflated by the
  // hash fill limit exactly like exact mode inflates the symbolic counts.
  std::vector<offset_t> numeric_entries(estimate.row_nnz_estimate.size());
  for (std::size_t r = 0; r < numeric_entries.size(); ++r) {
    numeric_entries[r] = static_cast<offset_t>(
        static_cast<double>(estimate.row_nnz_estimate[r]) /
            config_.max_numeric_fill +
        1.0);
    if (faults != nullptr) {
      numeric_entries[r] =
          faults->scale_estimate(static_cast<index_t>(r), numeric_entries[r]);
    }
  }
  sim::Launch numeric_lb_launch("numeric_lb", device_, model_);
  const GlobalLbInputs numeric_inputs{std::span<const offset_t>(numeric_entries),
                                      /*symbolic=*/false};
  BinPlan numeric_plan =
      plan_global_lb(numeric_inputs, kernel_configs_, config_, numeric_lb_launch);
  diagnostics_.numeric_decision =
      lb_decision_stats(numeric_inputs, kernel_configs_, config_);
  diagnostics_.numeric_lb_used = numeric_plan.used_load_balancer;
  diagnostics_.numeric_blocks = static_cast<int>(numeric_plan.blocks.size());
  if (numeric_plan.used_load_balancer) {
    sim::LaunchResult finished = numeric_lb_launch.finish();
    result.timeline.add(sim::Stage::kNumericLoadBalance, finished.seconds);
    trace_.record(std::move(finished));
    if (!memory.allocate(numeric_plan.lb_memory_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "load balancer buffers exceed device memory";
      return result;
    }
  }

  poll_cancel("numeric load balancing");
  // Estimated C staging: one over-allocated slot per row (this is the
  // allocation exact mode sizes from the symbolic counts).
  offset_t staging_nnz = 0;
  for (const index_t est : estimate.row_nnz_estimate) staging_nnz += est;
  const std::size_t staging_bytes =
      (static_cast<std::size_t>(a.rows()) + 1) * sizeof(offset_t) +
      static_cast<std::size_t>(staging_nnz) * (sizeof(index_t) + sizeof(value_t));
  if (!memory.allocate(staging_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "estimated output staging exceeds device memory";
    return result;
  }

  // Stage 5' + 6': estimated numeric merge (discovers the exact pattern,
  // re-running underflowed rows through the fallback) and compaction.
  const std::size_t numeric_trace_mark = trace_.launches().size();
  EstimatedNumericOutcome numeric =
      run_numeric_estimated(ctx, numeric_plan, estimate.row_nnz_estimate);
  diagnostics_.numeric = numeric.stats;
  diagnostics_.radix_sorted_elements = numeric.radix_sorted_elements;
  result.timeline.add(sim::Stage::kNumeric, numeric.stats.seconds);
  result.timeline.add(sim::Stage::kSorting, numeric.sorting_seconds);
  const offset_t c_nnz = numeric.c.nnz();
  const std::size_t c_bytes =
      (static_cast<std::size_t>(a.rows()) + 1) * sizeof(offset_t) +
      static_cast<std::size_t>(c_nnz) * (sizeof(index_t) + sizeof(value_t));
  if (!memory.allocate(c_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "output matrix exceeds device memory";
    return result;
  }
  memory.release(staging_bytes);

  result.c = std::move(numeric.c);
  result.seconds = result.timeline.total_seconds();
  result.peak_memory_bytes = memory.peak_bytes();

  if (capture != nullptr) {
    SpeckPlan& plan = *capture;
    plan.wide_keys = ctx.wide_keys;
    // The plan stores the *actual* exact counts; the replay program's method
    // selection is re-derived from the *estimates* — exactly what the
    // estimated pass executed, which is what keeps replays bit-identical.
    plan.row_nnz = std::move(numeric.row_nnz);
    if (steal_pattern) {
      std::vector<value_t> discarded_values;
      result.c.take_arrays(plan.c_row_offsets, plan.c_col_indices,
                           discarded_values);
    } else {
      const std::span<const offset_t> c_offsets = result.c.row_offsets();
      const std::span<const index_t> c_cols = result.c.col_indices();
      plan.c_row_offsets.assign(c_offsets.begin(), c_offsets.end());
      plan.c_col_indices.assign(c_cols.begin(), c_cols.end());
    }
    if (static_cast<std::uint64_t>(a.nnz()) >= kMaxReplayIndex ||
        static_cast<std::uint64_t>(b.nnz()) >= kMaxReplayIndex ||
        static_cast<std::uint64_t>(c_nnz) >= kMaxReplayIndex) {
      plan.incomplete_reason =
          "matrix too large for the 32-bit replay program";
    } else {
      plan.program = build_replay_program(ctx, numeric_plan,
                                          estimate.row_nnz_estimate,
                                          plan.c_row_offsets,
                                          plan.c_col_indices);
      plan.complete = true;
    }
    plan.analysis = std::move(estimate.analysis);
    plan.numeric_plan = std::move(numeric_plan);
    plan.diagnostics = diagnostics_;
    plan.numeric_seconds = numeric.stats.seconds;
    plan.sorting_seconds = numeric.sorting_seconds;
    const std::vector<sim::LaunchResult>& launches = trace_.launches();
    plan.replay_trace.assign(
        launches.begin() + static_cast<std::ptrdiff_t>(numeric_trace_mark),
        launches.end());
    plan.inspect_seconds =
        result.timeline.seconds(sim::Stage::kAnalysis) +
        result.timeline.seconds(sim::Stage::kNumericLoadBalance);
  }
  return result;
}

SpGemmResult Speck::multiply_masked_full(const Csr& a, const Csr& b,
                                         const Csr& mask, SpeckPlan* capture,
                                         const CancelToken* cancel,
                                         bool steal_pattern) {
  const auto poll_cancel = [cancel](const char* phase) {
    if (cancel != nullptr) cancel->check(phase);
  };
  poll_cancel("admission");
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  validate_mask_input(a, b, mask, /*full=*/config_.validate_inputs);
  if (config_.validate_inputs) validate_multiply_inputs(a, b);
  std::optional<FaultInjector> injector;
  if (config_.faults.enabled()) injector.emplace(config_.faults);
  const FaultInjector* faults = injector ? &*injector : nullptr;

  SpGemmResult result;
  diagnostics_ = SpeckDiagnostics{};
  diagnostics_.masked = true;
  diagnostics_.wide_keys = b.cols() > kMaxColumns32Bit;
  trace_.clear();

  sim::MemoryTracker memory(faults != nullptr
                                ? faults->cap_memory(device_.global_memory_bytes)
                                : device_.global_memory_bytes);
  // The mask is resident alongside the inputs for the whole multiply: the
  // numeric kernels stream it row by row like they stream B.
  if (!memory.allocate(a.byte_size() + b.byte_size() + mask.byte_size())) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "input matrices exceed device memory";
    return result;
  }

  KernelContext ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.mask = &mask;
  ctx.cfg = &config_;
  ctx.configs = &kernel_configs_;
  ctx.device = &device_;
  ctx.model = &model_;
  ctx.wide_keys = diagnostics_.wide_keys;
  ctx.trace = &trace_;
  ctx.pool = host_pool();
  ctx.workspaces = &workspaces_;
  ctx.faults = faults;
  ctx.simd = simd::resolve_backend(config_.simd_backend);
  ctx.partitions = resolve_partitions(config_.partitions);
  ctx.partition_steal = config_.partition_steal;
  diagnostics_.partition.partitions = ctx.partitions;
  ctx.partition_diag = &diagnostics_.partition;
  if (ctx.partitions > 1) {
    ctx.team_workspaces = &team_workspaces_;
    if (config_.numa_local_b) {
      ensure_team_b(b, ctx);
      ctx.team_b = &team_b_;
    }
  }

  // Stage 1: the same lightweight row analysis as the exact pipeline — the
  // product counts bound the per-row work and cap the accumulator demand.
  sim::Launch analysis_launch("row_analysis", device_, model_);
  RowAnalysis analysis = analyze_rows(a, b, analysis_launch, ctx.pool, faults);
  ctx.analysis = &analysis;
  diagnostics_.products = analysis.total_products;
  {
    sim::LaunchResult finished = analysis_launch.finish();
    result.timeline.add(sim::Stage::kAnalysis, finished.seconds);
    trace_.record(std::move(finished));
  }
  const std::size_t analysis_bytes =
      static_cast<std::size_t>(a.rows()) *
      (sizeof(offset_t) + 3 * sizeof(index_t));
  if (!memory.allocate(analysis_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "row analysis buffers exceed device memory";
    return result;
  }

  poll_cancel("row analysis");
  // The symbolic pass is skipped entirely: the mask row *is* the candidate
  // pattern, so the accumulator demand per row is the hard bound
  // min(products, mask_row_nnz) — never an estimate, so there is no
  // fallback machinery. Numeric binning runs off that demand inflated by
  // the hash fill limit, exactly like exact mode inflates the symbolic
  // counts.
  const std::span<const offset_t> mask_offsets = mask.row_offsets();
  const auto rows = static_cast<std::size_t>(a.rows());
  std::vector<index_t> masked_demand(rows);
  std::vector<offset_t> numeric_entries(rows);
  offset_t staging_nnz = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const offset_t mask_len = mask_offsets[r + 1] - mask_offsets[r];
    const offset_t demand = std::min(analysis.products[r], mask_len);
    masked_demand[r] = static_cast<index_t>(demand);
    staging_nnz += demand;
    numeric_entries[r] = static_cast<offset_t>(
        static_cast<double>(demand) / config_.max_numeric_fill + 1.0);
    if (faults != nullptr) {
      numeric_entries[r] =
          faults->scale_estimate(static_cast<index_t>(r), numeric_entries[r]);
    }
  }
  sim::Launch numeric_lb_launch("numeric_lb", device_, model_);
  const GlobalLbInputs numeric_inputs{std::span<const offset_t>(numeric_entries),
                                      /*symbolic=*/false};
  BinPlan numeric_plan =
      plan_global_lb(numeric_inputs, kernel_configs_, config_, numeric_lb_launch);
  diagnostics_.numeric_decision =
      lb_decision_stats(numeric_inputs, kernel_configs_, config_);
  diagnostics_.numeric_lb_used = numeric_plan.used_load_balancer;
  diagnostics_.numeric_blocks = static_cast<int>(numeric_plan.blocks.size());
  if (numeric_plan.used_load_balancer) {
    sim::LaunchResult finished = numeric_lb_launch.finish();
    result.timeline.add(sim::Stage::kNumericLoadBalance, finished.seconds);
    trace_.record(std::move(finished));
    if (!memory.allocate(numeric_plan.lb_memory_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "load balancer buffers exceed device memory";
      return result;
    }
  }

  poll_cancel("numeric load balancing");
  // Masked C staging: one slot per admissible (mask ∩ demand) position.
  const std::size_t staging_bytes =
      (rows + 1) * sizeof(offset_t) +
      static_cast<std::size_t>(staging_nnz) * (sizeof(index_t) + sizeof(value_t));
  if (!memory.allocate(staging_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "masked output staging exceeds device memory";
    return result;
  }

  // Stage 5'': masked numeric pass. No sorting stage follows — mask rows
  // are ascending, so extraction emits C already in final order.
  const std::size_t numeric_trace_mark = trace_.launches().size();
  MaskedNumericOutcome numeric =
      run_numeric_masked(ctx, numeric_plan, masked_demand);
  diagnostics_.numeric = numeric.stats;
  result.timeline.add(sim::Stage::kNumeric, numeric.stats.seconds);
  if (numeric.stats.global_pool_bytes > 0) {
    if (!memory.allocate(numeric.stats.global_pool_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "global hash pool exceeds device memory";
      return result;
    }
    memory.release(numeric.stats.global_pool_bytes);
  }
  const offset_t c_nnz = numeric.c.nnz();
  const std::size_t c_bytes =
      (rows + 1) * sizeof(offset_t) +
      static_cast<std::size_t>(c_nnz) * (sizeof(index_t) + sizeof(value_t));
  if (!memory.allocate(c_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "output matrix exceeds device memory";
    return result;
  }
  memory.release(staging_bytes);

  result.c = std::move(numeric.c);
  result.seconds = result.timeline.total_seconds();
  result.peak_memory_bytes = memory.peak_bytes();

  if (capture != nullptr) {
    SpeckPlan& plan = *capture;
    plan.wide_keys = ctx.wide_keys;
    plan.row_nnz = std::move(numeric.row_nnz);
    if (steal_pattern) {
      std::vector<value_t> discarded_values;
      result.c.take_arrays(plan.c_row_offsets, plan.c_col_indices,
                           discarded_values);
    } else {
      const std::span<const offset_t> c_offsets = result.c.row_offsets();
      const std::span<const index_t> c_cols = result.c.col_indices();
      plan.c_row_offsets.assign(c_offsets.begin(), c_offsets.end());
      plan.c_col_indices.assign(c_cols.begin(), c_cols.end());
    }
    if (static_cast<std::uint64_t>(a.nnz()) >= kMaxReplayIndex ||
        static_cast<std::uint64_t>(b.nnz()) >= kMaxReplayIndex ||
        static_cast<std::uint64_t>(c_nnz) >= kMaxReplayIndex) {
      plan.incomplete_reason =
          "matrix too large for the 32-bit replay program";
    } else {
      plan.program = build_replay_program_masked(ctx, plan.c_row_offsets,
                                                 plan.c_col_indices);
      plan.complete = true;
    }
    plan.analysis = std::move(analysis);
    plan.numeric_plan = std::move(numeric_plan);
    plan.diagnostics = diagnostics_;
    plan.numeric_seconds = numeric.stats.seconds;
    plan.sorting_seconds = 0.0;
    const std::vector<sim::LaunchResult>& launches = trace_.launches();
    plan.replay_trace.assign(
        launches.begin() + static_cast<std::ptrdiff_t>(numeric_trace_mark),
        launches.end());
    plan.inspect_seconds =
        result.timeline.seconds(sim::Stage::kAnalysis) +
        result.timeline.seconds(sim::Stage::kNumericLoadBalance);
  }
  return result;
}

Speck::TryMultiplyOutcome Speck::try_multiply(const Csr& a,
                                              const Csr& b) noexcept {
  TryMultiplyOutcome out;
  try {
    out.result = multiply(a, b);
    switch (out.result.status) {
      case SpGemmStatus::kOk:
        break;
      case SpGemmStatus::kOutOfMemory:
        out.status = Status{ErrorCode::kResourceExhausted,
                            out.result.failure_reason, "Speck::multiply"};
        break;
      case SpGemmStatus::kUnsupported:
        out.status = Status{ErrorCode::kBadInput, out.result.failure_reason,
                            "Speck::multiply"};
        break;
    }
  } catch (...) {
    out.status = status_from_current_exception();
  }
  return out;
}

}  // namespace speck
