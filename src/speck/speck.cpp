#include "speck/speck.h"

#include <algorithm>
#include <optional>

#include "common/bit_utils.h"
#include "matrix/matrix_stats.h"
#include "sim/memory_tracker.h"

namespace speck {

ThreadPool* Speck::host_pool() {
  if (config_.host_threads == 0) {
    pool_.reset();
    return nullptr;
  }
  if (!pool_ || pool_->thread_count() != config_.host_threads) {
    pool_ = std::make_unique<ThreadPool>(config_.host_threads);
  }
  return pool_.get();
}

SpGemmResult Speck::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  if (config_.validate_inputs) {
    a.validate();
    b.validate();
    if (!a.sorted_within_rows()) {
      throw BadInput("matrix A has unsorted rows (CSR requires ascending "
                     "column indices; call sort_rows())",
                     "Speck::multiply");
    }
    if (!b.sorted_within_rows()) {
      throw BadInput("matrix B has unsorted rows (CSR requires ascending "
                     "column indices; call sort_rows())",
                     "Speck::multiply");
    }
  }
  std::optional<FaultInjector> injector;
  if (config_.faults.enabled()) injector.emplace(config_.faults);
  const FaultInjector* faults = injector ? &*injector : nullptr;

  SpGemmResult result;
  diagnostics_ = SpeckDiagnostics{};
  diagnostics_.wide_keys = b.cols() > kMaxColumns32Bit;
  trace_.clear();

  sim::MemoryTracker memory(faults != nullptr
                                ? faults->cap_memory(device_.global_memory_bytes)
                                : device_.global_memory_bytes);
  // Input matrices are resident for the duration of the multiplication
  // (the paper lists this as spECK's limitation, §7).
  if (!memory.allocate(a.byte_size() + b.byte_size())) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "input matrices exceed device memory";
    return result;
  }

  KernelContext ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.cfg = &config_;
  ctx.configs = &kernel_configs_;
  ctx.device = &device_;
  ctx.model = &model_;
  ctx.wide_keys = diagnostics_.wide_keys;
  ctx.trace = &trace_;
  ctx.pool = host_pool();
  ctx.workspaces = &workspaces_;
  ctx.faults = faults;

  // Stage 1: lightweight row analysis (Algorithm 1).
  sim::Launch analysis_launch("row_analysis", device_, model_);
  const RowAnalysis analysis = analyze_rows(a, b, analysis_launch, ctx.pool, faults);
  ctx.analysis = &analysis;
  diagnostics_.products = analysis.total_products;
  {
    sim::LaunchResult finished = analysis_launch.finish();
    result.timeline.add(sim::Stage::kAnalysis, finished.seconds);
    trace_.record(std::move(finished));
  }
  const std::size_t analysis_bytes =
      static_cast<std::size_t>(a.rows()) *
      (sizeof(offset_t) + 3 * sizeof(index_t));
  if (!memory.allocate(analysis_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "row analysis buffers exceed device memory";
    return result;
  }

  // Stage 2: conditional global load balancing for the symbolic pass,
  // binning on the conservative product counts.
  sim::Launch symbolic_lb_launch("symbolic_lb", device_, model_);
  const GlobalLbInputs symbolic_inputs{std::span<const offset_t>(analysis.products),
                                       /*symbolic=*/true};
  const BinPlan symbolic_plan =
      plan_global_lb(symbolic_inputs, kernel_configs_, config_, symbolic_lb_launch);
  diagnostics_.symbolic_decision =
      lb_decision_stats(symbolic_inputs, kernel_configs_, config_);
  diagnostics_.symbolic_lb_used = symbolic_plan.used_load_balancer;
  diagnostics_.symbolic_blocks = static_cast<int>(symbolic_plan.blocks.size());
  if (symbolic_plan.used_load_balancer) {
    sim::LaunchResult finished = symbolic_lb_launch.finish();
    result.timeline.add(sim::Stage::kSymbolicLoadBalance, finished.seconds);
    trace_.record(std::move(finished));
    if (!memory.allocate(symbolic_plan.lb_memory_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "load balancer buffers exceed device memory";
      return result;
    }
  }

  // Stage 3: symbolic SpGEMM (exact C row sizes).
  SymbolicOutcome symbolic = run_symbolic(ctx, symbolic_plan);
  diagnostics_.symbolic = symbolic.stats;
  result.timeline.add(sim::Stage::kSymbolic, symbolic.stats.seconds);
  if (symbolic.stats.global_pool_bytes > 0 &&
      !memory.allocate(symbolic.stats.global_pool_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "global hash pool exceeds device memory";
    return result;
  }
  if (symbolic.stats.global_pool_bytes > 0) {
    memory.release(symbolic.stats.global_pool_bytes);
  }

  // Output row offsets via exclusive prefix sum; the C allocation itself is
  // not timed (identical for every method) but counts towards peak memory.
  offset_t c_nnz = 0;
  for (const index_t nnz : symbolic.row_nnz) c_nnz += nnz;
  const std::size_t c_bytes =
      (static_cast<std::size_t>(a.rows()) + 1) * sizeof(offset_t) +
      static_cast<std::size_t>(c_nnz) * (sizeof(index_t) + sizeof(value_t));
  if (!memory.allocate(c_bytes)) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "output matrix exceeds device memory";
    return result;
  }

  // Stage 4: conditional global load balancing for the numeric pass, using
  // the exact row sizes inflated by the hash fill limit (66%).
  std::vector<offset_t> numeric_entries(symbolic.row_nnz.size());
  for (std::size_t r = 0; r < symbolic.row_nnz.size(); ++r) {
    numeric_entries[r] = static_cast<offset_t>(
        static_cast<double>(symbolic.row_nnz[r]) / config_.max_numeric_fill + 1.0);
    if (faults != nullptr) {
      // Perturb the numeric binning input too — like the analysis estimates
      // this only shifts rows between kernel configurations.
      numeric_entries[r] =
          faults->scale_estimate(static_cast<index_t>(r), numeric_entries[r]);
    }
  }
  sim::Launch numeric_lb_launch("numeric_lb", device_, model_);
  const GlobalLbInputs numeric_inputs{std::span<const offset_t>(numeric_entries),
                                      /*symbolic=*/false};
  const BinPlan numeric_plan =
      plan_global_lb(numeric_inputs, kernel_configs_, config_, numeric_lb_launch);
  diagnostics_.numeric_decision =
      lb_decision_stats(numeric_inputs, kernel_configs_, config_);
  diagnostics_.numeric_lb_used = numeric_plan.used_load_balancer;
  diagnostics_.numeric_blocks = static_cast<int>(numeric_plan.blocks.size());
  if (numeric_plan.used_load_balancer) {
    sim::LaunchResult finished = numeric_lb_launch.finish();
    result.timeline.add(sim::Stage::kNumericLoadBalance, finished.seconds);
    trace_.record(std::move(finished));
    if (!memory.allocate(numeric_plan.lb_memory_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "load balancer buffers exceed device memory";
      return result;
    }
  }

  // Stage 5 + 6: numeric SpGEMM and the sorting pass.
  NumericOutcome numeric = run_numeric(ctx, numeric_plan, symbolic.row_nnz);
  diagnostics_.numeric = numeric.stats;
  diagnostics_.radix_sorted_elements = numeric.radix_sorted_elements;
  result.timeline.add(sim::Stage::kNumeric, numeric.stats.seconds);
  result.timeline.add(sim::Stage::kSorting, numeric.sorting_seconds);
  if (numeric.stats.global_pool_bytes > 0) {
    if (!memory.allocate(numeric.stats.global_pool_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "global hash pool exceeds device memory";
      return result;
    }
    memory.release(numeric.stats.global_pool_bytes);
  }
  if (numeric.radix_sorted_elements > 0) {
    // Double-buffer for the device radix sort.
    const auto sort_bytes = static_cast<std::size_t>(numeric.radix_sorted_elements) *
                            (sizeof(index_t) + sizeof(value_t));
    if (!memory.allocate(sort_bytes)) {
      result.status = SpGemmStatus::kOutOfMemory;
      result.failure_reason = "radix sort buffers exceed device memory";
      return result;
    }
    memory.release(sort_bytes);
  }

  result.c = std::move(numeric.c);
  result.seconds = result.timeline.total_seconds();
  result.peak_memory_bytes = memory.peak_bytes();
  return result;
}

Speck::TryMultiplyOutcome Speck::try_multiply(const Csr& a,
                                              const Csr& b) noexcept {
  TryMultiplyOutcome out;
  try {
    out.result = multiply(a, b);
    switch (out.result.status) {
      case SpGemmStatus::kOk:
        break;
      case SpGemmStatus::kOutOfMemory:
        out.status = Status{ErrorCode::kResourceExhausted,
                            out.result.failure_reason, "Speck::multiply"};
        break;
      case SpGemmStatus::kUnsupported:
        out.status = Status{ErrorCode::kBadInput, out.result.failure_reason,
                            "Speck::multiply"};
        break;
    }
  } catch (...) {
    out.status = status_from_current_exception();
  }
  return out;
}

}  // namespace speck
