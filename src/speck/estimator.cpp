#include "speck/estimator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <variant>

#include "common/bit_utils.h"
#include "common/prefix_sum.h"
#include "common/prng.h"
#include "speck/hash_map.h"
#include "speck/kernels_detail.h"
#include "speck/local_lb.h"

namespace speck {
namespace {

/// Rows per parallel chunk. Fixed (never derived from the thread count) so
/// chunk boundaries — and with them every per-row result — are identical at
/// any parallelism level.
constexpr std::size_t kRowChunk = 256;

/// Expected number of distinct columns among `products` draws over a column
/// universe of size `n` (the balls-into-bins compression correction:
/// n * (1 - (1 - 1/n)^p), evaluated stably via expm1/log1p).
double distinct_columns(double products, double n, double log_keep) {
  if (products <= 0.0 || n <= 0.0) return 0.0;
  return -n * std::expm1(products * log_keep);
}

/// Accumulator method per row, re-deriving run_numeric's block-level
/// selection from the *estimates* exactly like build_replay_program does
/// from the plan: all-direct blocks stream, single-row blocks may go dense,
/// everything else hashes. The estimated pass, the fallback pass and the
/// replay program must all agree on this — the method decides the row's
/// floating-point assign/accumulate semantics.
std::vector<RowMethod> methods_for_plan(const KernelContext& ctx,
                                        const BinPlan& plan,
                                        std::span<const index_t> row_nnz_estimate) {
  const auto rows = static_cast<std::size_t>(ctx.a->rows());
  std::vector<RowMethod> methods(rows, RowMethod::kHash);
  for (const BinPlan::Block& block : plan.blocks) {
    const std::span<const index_t> block_rows(
        plan.row_order.data() + block.begin, block.end - block.begin);
    if (block_rows.empty()) continue;
    bool all_direct = ctx.cfg->features.direct_rows;
    for (const index_t r : block_rows) {
      all_direct = all_direct && ctx.a->row_length(r) == 1;
    }
    if (all_direct) {
      for (const index_t r : block_rows) {
        methods[static_cast<std::size_t>(r)] = RowMethod::kDirect;
      }
      continue;
    }
    if (block_rows.size() == 1) {
      const index_t r = block_rows.front();
      RowMethod method = choose_numeric_method(
          ctx, r, row_nnz_estimate[static_cast<std::size_t>(r)],
          /*merged_block=*/false, block.config);
      if (method != RowMethod::kDense) method = RowMethod::kHash;
      methods[static_cast<std::size_t>(r)] = method;
    }
  }
  return methods;
}

/// Merges one row of C into `dst_cols`/`dst_vals` (capacity `cap` slots) via
/// the worker's column-scatter map, returning the row's *actual* NNZ — the
/// count keeps going past `cap`, only the stores stop. Fitting non-direct
/// rows are sorted by column in place. `touches` accumulates the products
/// processed (cost accounting).
///
/// Floating-point semantics per method mirror the exact kernels: direct and
/// hash rows *assign* a column's first product, dense rows accumulate into
/// an implicit zero (0.0 + p); every subsequent product adds. Products for
/// one column arrive in ascending-A-column order in every method, which is
/// what keeps the sums bit-identical across planning modes and the replay.
index_t merge_row(const KernelContext& ctx, index_t r, RowMethod method,
                  index_t cap, index_t* dst_cols, value_t* dst_vals,
                  KernelWorkspace& ws, std::size_t& touches) {
  const auto a_cols = ctx.a->row_cols(r);
  const auto a_vals = ctx.a->row_vals(r);
  if (method == RowMethod::kDirect) {
    // Single A entry: the C row is the referenced B row, already sorted.
    if (a_cols.empty()) return 0;
    const value_t av = a_vals.front();
    const index_t k = a_cols.front();
    const auto b_cols = ctx.b->row_cols(k);
    const auto b_vals = ctx.b->row_vals(k);
    touches += b_cols.size();
    const auto len = static_cast<index_t>(b_cols.size());
    if (len <= cap) {
      for (std::size_t j = 0; j < b_cols.size(); ++j) {
        dst_cols[j] = b_cols[j];
        dst_vals[j] = av * b_vals[j];
      }
    }
    return len;
  }

  const auto b_cols_total = static_cast<std::size_t>(ctx.b->cols());
  std::vector<std::uint32_t>& colmap = ws.estimate_colmap();
  std::vector<std::uint32_t>& epoch = ws.estimate_epoch();
  if (epoch.size() < b_cols_total) {
    epoch.resize(b_cols_total, 0);
    colmap.resize(b_cols_total);
  }
  std::uint32_t& counter = ws.estimate_epoch_counter();
  if (counter == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(epoch.begin(), epoch.end(), 0);
    counter = 0;
  }
  const std::uint32_t cur = ++counter;

  const bool dense = method == RowMethod::kDense;
  const auto cap_u = static_cast<std::uint32_t>(cap);
  std::uint32_t count = 0;
  for (std::size_t i = 0; i < a_cols.size(); ++i) {
    const value_t av = a_vals[i];
    const auto b_cols = ctx.b->row_cols(a_cols[i]);
    const auto b_vals = ctx.b->row_vals(a_cols[i]);
    touches += b_cols.size();
    for (std::size_t j = 0; j < b_cols.size(); ++j) {
      const auto col = static_cast<std::size_t>(b_cols[j]);
      const value_t p = av * b_vals[j];
      if (epoch[col] != cur) {
        epoch[col] = cur;
        colmap[col] = count;
        if (count < cap_u) {
          dst_cols[count] = b_cols[j];
          dst_vals[count] = dense ? 0.0 + p : p;
        }
        ++count;
      } else {
        const std::uint32_t slot = colmap[col];
        if (slot < cap_u) dst_vals[slot] += p;
      }
    }
  }

  const auto actual = static_cast<index_t>(count);
  if (actual <= cap && actual > 1) {
    std::vector<DeviceHashMap::Entry>& entries = ws.entries();
    entries.resize(static_cast<std::size_t>(actual));
    // Extraction strategy is pure perf — both paths emit the identical
    // ascending-column permutation of the fully accumulated slot values.
    // Dense rows always scan their window (mirroring the exact dense
    // kernel); hash rows scan too when the row's exact column range is
    // narrow enough that a linear sweep beats sorting — the usual case on
    // banded matrices, where first-touch order is nearly sorted already but
    // std::sort still pays its full comparison bill.
    const auto ri = static_cast<std::size_t>(r);
    const auto lo = static_cast<std::size_t>(ctx.analysis->col_min[ri]);
    const auto hi = static_cast<std::size_t>(ctx.analysis->col_max[ri]);
    const std::size_t window = hi - lo + 1;
    const std::size_t sort_cost =
        static_cast<std::size_t>(actual) *
        static_cast<std::size_t>(std::bit_width(static_cast<std::size_t>(actual)));
    if (dense || window <= 4 * sort_cost) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        entries[i].value = dst_vals[i];
      }
      std::uint32_t w = 0;
      for (std::size_t col = lo; col <= hi; ++col) {
        if (epoch[col] == cur) {
          dst_cols[w] = static_cast<index_t>(col);
          dst_vals[w] = entries[colmap[col]].value;
          ++w;
        }
      }
      SPECK_ASSERT(w == count, "window extraction lost columns");
    } else {
      // First-touch order is not sorted; sort the (col, val) pairs through
      // the worker's entry scratch (warm after the first block).
      for (std::size_t i = 0; i < entries.size(); ++i) {
        entries[i] = DeviceHashMap::Entry{
            static_cast<key64_t>(static_cast<std::uint32_t>(dst_cols[i])),
            dst_vals[i]};
      }
      std::sort(entries.begin(), entries.end(),
                [](const auto& x, const auto& y) { return x.key < y.key; });
      for (std::size_t i = 0; i < entries.size(); ++i) {
        dst_cols[i] = static_cast<index_t>(entries[i].key);
        dst_vals[i] = entries[i].value;
      }
    }
  }
  return actual;
}

}  // namespace

RowEstimate estimate_rows(const Csr& a, const Csr& b, const SpeckConfig& cfg,
                          sim::Launch& launch, ThreadPool* pool,
                          const FaultInjector* faults) {
  RowEstimate out;
  RowAnalysis& an = out.analysis;
  const auto rows = static_cast<std::size_t>(a.rows());
  an.rows = a.rows();
  an.products.assign(rows, 0);
  an.longest_b_row.assign(rows, 0);
  an.col_min.assign(rows, 0);
  an.col_max.assign(rows, 0);
  out.row_nnz_estimate.assign(rows, 0);

  const auto samples = static_cast<std::size_t>(cfg.estimator_samples);
  const double margin = cfg.estimator_safety_margin;
  const double n_cols = static_cast<double>(b.cols());
  const index_t col_cap = b.cols();
  // (1 - 1/n)^p via p * log1p(-1/n); hoisted — constant across rows.
  const double log_keep = b.cols() > 1 ? std::log1p(-1.0 / n_cols) : 0.0;
  const auto b_offsets = b.row_offsets();
  const auto b_col_idx = b.col_indices();

  pool_or_global(pool).parallel_for(
      rows, kRowChunk, [&](std::size_t begin, std::size_t end, int /*worker*/) {
        for (std::size_t ri = begin; ri < end; ++ri) {
          const auto r = static_cast<index_t>(ri);
          const auto a_cols = a.row_cols(r);
          const std::size_t row_len = a_cols.size();
          if (row_len == 0) continue;

          // Lightweight exact analysis, identical to analyze_rows: per A
          // entry two offset loads and the referenced row's first/last
          // column. This is the O(nnz_A) part the paper keeps; the O(products)
          // symbolic hashing is what the estimator below replaces. The tight
          // column ranges matter — they are what lets the estimated numeric
          // pass pick dense windows exactly like the exact pipeline does.
          offset_t prod_r = 0;
          index_t longest = 0;
          index_t cmin = b.cols();
          index_t cmax = -1;
          for (const index_t col_a : a_cols) {
            const offset_t id0 = b_offsets[static_cast<std::size_t>(col_a)];
            const offset_t idn = b_offsets[static_cast<std::size_t>(col_a) + 1];
            const auto len = static_cast<index_t>(idn - id0);
            if (len > 0) {
              cmin = std::min(cmin, b_col_idx[static_cast<std::size_t>(id0)]);
              cmax = std::max(cmax, b_col_idx[static_cast<std::size_t>(idn - 1)]);
            }
            prod_r += len;
            longest = std::max(longest, len);
          }
          an.products[ri] =
              faults != nullptr ? faults->scale_estimate(r, prod_r) : prod_r;
          an.longest_b_row[ri] = longest;
          an.col_min[ri] = cmin == b.cols() ? 0 : cmin;
          an.col_max[ri] = cmax < 0 ? 0 : cmax;

          // The sampled NNZ estimator: short rows use the exact product
          // count; long rows extrapolate from `samples` uniformly drawn
          // B-row lengths instead of trusting the scan above, so the
          // estimate — and with it staging sizes and the fallback rate —
          // remains a pure function of (structure, estimator_seed, row).
          offset_t est_products = prod_r;
          if (row_len > samples) {
            // Stateless per-row PRNG: independent of chunking/threading.
            std::uint64_t sm = cfg.estimator_seed ^
                               (0x9E3779B97F4A7C15ull *
                                (static_cast<std::uint64_t>(ri) + 1));
            Xoshiro256 rng(splitmix64(sm));
            std::uint64_t sum = 0;
            for (std::size_t s = 0; s < samples; ++s) {
              // With replacement — keeps the loop allocation-free; the mean
              // of sampled B-row lengths stays an unbiased estimator.
              const auto pick = static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(row_len)));
              sum += static_cast<std::uint64_t>(
                  b.row_length(a_cols[pick]));
            }
            const double mean =
                static_cast<double>(sum) / static_cast<double>(samples);
            est_products = static_cast<offset_t>(
                mean * static_cast<double>(row_len) + 0.5);
          }

          // Distinct-column correction, then the safety margin, clamped to
          // the hard bounds [1, min(products, b.cols())] for non-empty rows.
          double est = distinct_columns(static_cast<double>(est_products),
                                        n_cols, log_keep) *
                       margin;
          est = std::min(est,
                         std::min(static_cast<double>(est_products), n_cols));
          offset_t est_i =
              prod_r > 0
                  ? std::max<offset_t>(1, static_cast<offset_t>(est))
                  : 0;
          if (faults != nullptr) {
            // The forced-underflow hook: may scale the estimate below the
            // true row size, rerouting the row through the exact fallback.
            est_i = faults->scale_sampled_estimate(est_i);
          }
          est_i = std::min<offset_t>(est_i, static_cast<offset_t>(col_cap));
          out.row_nnz_estimate[ri] = static_cast<index_t>(est_i);
        }
      });

  for (const offset_t prod_r : an.products) {
    an.total_products += prod_r;
    an.max_products = std::max(an.max_products, prod_r);
  }
  an.avg_products =
      a.rows() > 0 ? static_cast<double>(an.total_products) / a.rows() : 0.0;

  // Cost: the exact lightweight scan (same shape as analyze_rows — each NZ
  // of A reads its column index, the B row-offset pair and the referenced
  // row's first/last column) plus the sampled lookups, which are scattered
  // (random index within the row) and pay the PRNG's issued work.
  const auto nnz_a = static_cast<std::size_t>(a.nnz());
  std::size_t sample_work = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto len = static_cast<std::size_t>(a.row_length(r));
    if (len > samples) sample_work += samples;
  }
  const int block_threads = launch.device().max_threads_per_block;
  const std::size_t total_work = nnz_a + sample_work;
  const std::size_t num_blocks = std::max<std::size_t>(
      1, ceil_div(total_work, static_cast<std::size_t>(block_threads)));
  std::size_t remaining_scan = nnz_a;
  std::size_t remaining_sample = sample_work;
  for (std::size_t blk = 0; blk < num_blocks; ++blk) {
    const std::size_t scan = std::min(remaining_scan,
                                      static_cast<std::size_t>(block_threads));
    remaining_scan -= scan;
    const std::size_t sampled =
        std::min(remaining_sample,
                 static_cast<std::size_t>(block_threads) - scan);
    remaining_sample -= sampled;
    auto cost = launch.make_block(block_threads, 4 * 1024);
    cost.global_coalesced(scan);               // col indices of A
    cost.global_coalesced(2 * scan);           // B row offsets (near-sequential)
    cost.global_scattered(scan / 2 + sampled); // first/last cols + samples
    cost.smem_atomic(4.0 * static_cast<double>(scan));  // per-row reductions
    cost.issued(static_cast<double>(block_threads),
                sampled > 0 ? 8.0 : 6.0);      // scan + PRNG/extrapolation
    cost.global_coalesced(4 * scan / 16);      // per-row outputs (amortized)
    launch.add(cost);
  }
  return out;
}

EstimatedNumericOutcome run_numeric_estimated(
    const KernelContext& ctx, const BinPlan& plan,
    std::span<const index_t> row_nnz_estimate) {
  EstimatedNumericOutcome out;
  const auto rows = static_cast<std::size_t>(ctx.a->rows());
  out.row_nnz.assign(rows, 0);

  // Staging: every row gets an estimate-sized slot; the merge records the
  // actual count even when it overruns the slot (stores just stop). The
  // scratch persists across plan() calls and only ever grows: every staging
  // element is written before it is read, so re-zeroing megabytes of slots
  // on each call would hand back a chunk of the symbolic-pass savings.
  thread_local std::vector<offset_t> est_offsets;
  if (est_offsets.size() < rows + 1) est_offsets.resize(rows + 1);
  est_offsets[0] = 0;
  simd::widen_i32_to_i64(row_nnz_estimate.data(), est_offsets.data() + 1, rows,
                         ctx.simd);
  inclusive_prefix_sum(std::span<offset_t>(est_offsets.data() + 1, rows),
                       ctx.simd);
  const auto staging_total = static_cast<std::size_t>(est_offsets[rows]);
  thread_local std::vector<index_t> staging_cols;
  thread_local std::vector<value_t> staging_vals;
  if (staging_cols.size() < staging_total) staging_cols.resize(staging_total);
  if (staging_vals.size() < staging_total) staging_vals.resize(staging_total);
  // Snapshot raw pointers for the worker lambdas: naming a thread_local
  // inside them would resolve through each *worker's* TLS (empty vectors),
  // not the coordinating thread's scratch.
  const offset_t* const est_offsets_ptr = est_offsets.data();
  index_t* const staging_cols_ptr = staging_cols.data();
  value_t* const staging_vals_ptr = staging_vals.data();

  const std::vector<RowMethod> methods =
      methods_for_plan(ctx, plan, row_nnz_estimate);

  detail::execute_block_plan<std::monostate>(
      ctx, plan, "numeric_est/", out.stats,
      [&](const KernelContext& bctx, const sim::Launch& launch,
          const KernelConfig& config, int /*config_index*/,
          std::span<const index_t> block_rows, PassStats& counters,
          std::monostate& /*payload*/, KernelWorkspace& ws) {
        auto cost = launch.make_block(config.threads, config.scratchpad_bytes);
        const BlockRowStats row_stats = detail::block_stats(bctx, block_rows);
        const LocalLbDecision lb =
            choose_group_size(config.threads, row_stats, bctx.cfg->features);

        std::size_t touches = 0;
        std::size_t written = 0;
        std::size_t sorted = 0;
        for (const index_t r : block_rows) {
          const auto ri = static_cast<std::size_t>(r);
          const RowMethod method = methods[ri];
          const index_t cap = row_nnz_estimate[ri];
          const auto base = static_cast<std::size_t>(est_offsets_ptr[ri]);
          const index_t actual =
              merge_row(bctx, r, method, cap, staging_cols_ptr + base,
                        staging_vals_ptr + base, ws, touches);
          out.row_nnz[ri] = actual;
          if (actual > cap) {
            ++counters.estimate_underflow_rows;
          } else {
            written += static_cast<std::size_t>(actual);
            if (method == RowMethod::kHash) {
              // Dense and direct rows emit in column order without sorting.
              sorted += static_cast<std::size_t>(actual);
            }
          }
          switch (method) {
            case RowMethod::kDirect: ++counters.direct_rows; break;
            case RowMethod::kDense: ++counters.dense_rows; break;
            case RowMethod::kHash: ++counters.hash_rows; break;
          }
        }

        detail::charge_row_sweep(cost, bctx, block_rows, lb.group_size,
                                 /*numeric=*/true, ws);
        cost.smem_atomic(static_cast<double>(touches));  // scatter-map merge
        cost.issued(static_cast<double>(sorted), 4.0);   // in-slot pair sort
        cost.global_coalesced(written);
        cost.global_coalesced64(written);
        return cost;
      },
      [](const std::monostate&) {});

  // Compaction: exact offsets from the actual counts, then the fitting rows
  // move from their over-allocated staging slots to final positions.
  std::vector<offset_t> offsets(rows + 1, 0);
  simd::widen_i32_to_i64(out.row_nnz.data(), offsets.data() + 1, rows,
                         ctx.simd);
  inclusive_prefix_sum(std::span<offset_t>(offsets.data() + 1, rows), ctx.simd);
  std::vector<index_t> out_cols(static_cast<std::size_t>(offsets.back()));
  std::vector<value_t> out_vals(static_cast<std::size_t>(offsets.back()));

  ThreadPool& pool = pool_or_global(ctx.pool);
  WorkspacePool local_workspaces;
  WorkspacePool& workspaces =
      ctx.workspaces != nullptr ? *ctx.workspaces : local_workspaces;
  workspaces.ensure(pool.thread_count());

  pool.parallel_for(rows, kRowChunk,
                    [&](std::size_t begin, std::size_t end, int /*worker*/) {
                      for (std::size_t r = begin; r < end; ++r) {
                        const auto n = static_cast<std::size_t>(out.row_nnz[r]);
                        if (n == 0 ||
                            out.row_nnz[r] > row_nnz_estimate[r]) {
                          continue;  // empty, or recomputed by the fallback
                        }
                        const auto src =
                            static_cast<std::size_t>(est_offsets_ptr[r]);
                        const auto dst = static_cast<std::size_t>(offsets[r]);
                        std::memcpy(out_cols.data() + dst,
                                    staging_cols_ptr + src,
                                    n * sizeof(index_t));
                        std::memcpy(out_vals.data() + dst,
                                    staging_vals_ptr + src,
                                    n * sizeof(value_t));
                      }
                    });

  // Fallback: rows whose estimate underflowed re-run the exact merge into
  // their exactly-sized final slots — this is how an estimated plan
  // self-corrects without ever producing an inexact C.
  std::vector<index_t> fallback_rows;
  for (std::size_t r = 0; r < rows; ++r) {
    if (out.row_nnz[r] > row_nnz_estimate[r]) {
      fallback_rows.push_back(static_cast<index_t>(r));
    }
  }
  if (!fallback_rows.empty()) {
    sim::Launch fallback_launch("numeric_est_fallback", *ctx.device, *ctx.model);
    const KernelConfig& largest = ctx.configs->back();
    std::vector<std::optional<sim::BlockCost>> costs(fallback_rows.size());
    constexpr std::size_t kFallbackChunk = 4;
    pool.parallel_for(
        fallback_rows.size(), kFallbackChunk,
        [&](std::size_t begin, std::size_t end, int worker) {
          KernelWorkspace& ws = workspaces.at(worker);
          for (std::size_t i = begin; i < end; ++i) {
            const index_t r = fallback_rows[i];
            const auto ri = static_cast<std::size_t>(r);
            const auto dst = static_cast<std::size_t>(offsets[ri]);
            std::size_t touches = 0;
            const index_t actual = merge_row(
                ctx, r, methods[ri], out.row_nnz[ri], out_cols.data() + dst,
                out_vals.data() + dst, ws, touches);
            SPECK_ASSERT(actual == out.row_nnz[ri],
                         "estimated fallback recount disagrees with the "
                         "first pass");
            auto cost =
                fallback_launch.make_block(largest.threads,
                                           largest.scratchpad_bytes);
            cost.global_scattered(touches);
            cost.smem_atomic(static_cast<double>(touches));
            cost.issued(static_cast<double>(actual), 4.0);
            cost.global_coalesced(static_cast<std::size_t>(actual));
            cost.global_coalesced64(static_cast<std::size_t>(actual));
            costs[i] = cost;
          }
        });
    for (const std::optional<sim::BlockCost>& cost : costs) {
      fallback_launch.add(*cost);
    }
    sim::LaunchResult finished = fallback_launch.finish();
    out.stats.seconds += finished.seconds;
    if (ctx.trace != nullptr) ctx.trace->record(std::move(finished));
  }

  out.c = Csr(ctx.a->rows(), ctx.b->cols(), std::move(offsets),
              std::move(out_cols), std::move(out_vals));
  return out;
}

}  // namespace speck
