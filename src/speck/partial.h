// Partial (panel-wise) SpGEMM — the paper's stated future work (§7):
// "partial multiplications of large matrices on single GPUs".
//
// C = A*B is computed in horizontal panels of A: each panel multiplication
// needs only the panel's analysis buffers and temporaries, so the device
// memory high-water mark is bounded by max(panel working set) + inputs +
// output instead of the full-matrix working set. Panels are chosen from the
// row analysis so that every panel's intermediate-product volume stays under
// a budget.
#pragma once

#include "ref/spgemm_api.h"
#include "speck/speck.h"

namespace speck {

struct PartialConfig {
  /// Maximum intermediate products per panel. Panels are cut greedily; a
  /// single row whose products exceed the budget forms its own panel.
  offset_t max_products_per_panel = 1 << 22;
  /// Evacuate each finished output panel to host memory before starting the
  /// next one. This is the point of partial multiplication: the device
  /// high-water mark stays at inputs + one panel's working set, at the cost
  /// of a PCIe transfer per panel.
  bool stream_output_to_host = true;
  /// Host-interconnect bandwidth for the evacuations (PCIe 3.0 x16).
  double pcie_bandwidth = 12e9;
  /// Inner spECK configuration used for every panel.
  SpeckConfig speck;
};

struct PartialDiagnostics {
  int panels = 0;
  offset_t largest_panel_products = 0;
  index_t largest_panel_rows = 0;
};

/// spECK run panel-by-panel. Produces bit-identical results to Speck (the
/// per-row computations are unchanged); simulated time adds the per-panel
/// launch overheads, and peak memory drops to the panel bound.
class PartialSpeck final : public SpGemmAlgorithm {
 public:
  PartialSpeck(sim::DeviceSpec device, sim::CostModel model, PartialConfig config = {})
      : SpGemmAlgorithm(device, model), config_(config) {}

  std::string name() const override { return "speck-partial"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

  const PartialConfig& config() const { return config_; }
  PartialConfig& config() { return config_; }
  const PartialDiagnostics& last_diagnostics() const { return diagnostics_; }

 private:
  PartialConfig config_;
  PartialDiagnostics diagnostics_;
};

/// Splits [0, rows) into panels with bounded product volume.
/// Exposed for tests.
std::vector<std::pair<index_t, index_t>> plan_panels(
    std::span<const offset_t> row_products, offset_t max_products_per_panel);

/// Extracts the row panel [begin, end) of a as its own CSR matrix.
Csr extract_row_panel(const Csr& a, index_t begin, index_t end);

/// Vertically concatenates panels (matching column counts).
Csr concat_row_panels(std::span<const Csr> panels);

}  // namespace speck
