#include "speck/partial.h"

#include <algorithm>

#include "matrix/matrix_stats.h"

namespace speck {

std::vector<std::pair<index_t, index_t>> plan_panels(
    std::span<const offset_t> row_products, offset_t max_products_per_panel) {
  SPECK_REQUIRE(max_products_per_panel > 0, "panel budget must be positive");
  std::vector<std::pair<index_t, index_t>> panels;
  const auto rows = static_cast<index_t>(row_products.size());
  index_t begin = 0;
  offset_t running = 0;
  for (index_t r = 0; r < rows; ++r) {
    const offset_t p = row_products[static_cast<std::size_t>(r)];
    if (r > begin && running + p > max_products_per_panel) {
      panels.emplace_back(begin, r);
      begin = r;
      running = 0;
    }
    running += p;
  }
  if (begin < rows) panels.emplace_back(begin, rows);
  return panels;
}

Csr extract_row_panel(const Csr& a, index_t begin, index_t end) {
  SPECK_REQUIRE(begin >= 0 && begin <= end && end <= a.rows(),
                "panel range out of bounds");
  const auto offsets = a.row_offsets();
  const auto first = static_cast<std::size_t>(offsets[static_cast<std::size_t>(begin)]);
  const auto last = static_cast<std::size_t>(offsets[static_cast<std::size_t>(end)]);

  std::vector<offset_t> panel_offsets(static_cast<std::size_t>(end - begin) + 1);
  for (index_t r = begin; r <= end; ++r) {
    panel_offsets[static_cast<std::size_t>(r - begin)] =
        offsets[static_cast<std::size_t>(r)] - static_cast<offset_t>(first);
  }
  std::vector<index_t> cols(a.col_indices().begin() + first,
                            a.col_indices().begin() + last);
  std::vector<value_t> vals(a.values().begin() + first, a.values().begin() + last);
  return Csr(end - begin, a.cols(), std::move(panel_offsets), std::move(cols),
             std::move(vals));
}

Csr concat_row_panels(std::span<const Csr> panels) {
  SPECK_REQUIRE(!panels.empty(), "cannot concatenate zero panels");
  const index_t cols = panels.front().cols();
  index_t rows = 0;
  offset_t nnz = 0;
  for (const Csr& panel : panels) {
    SPECK_REQUIRE(panel.cols() == cols, "panel column counts must match");
    rows += panel.rows();
    nnz += panel.nnz();
  }
  std::vector<offset_t> offsets;
  offsets.reserve(static_cast<std::size_t>(rows) + 1);
  offsets.push_back(0);
  std::vector<index_t> out_cols;
  out_cols.reserve(static_cast<std::size_t>(nnz));
  std::vector<value_t> out_vals;
  out_vals.reserve(static_cast<std::size_t>(nnz));
  offset_t base = 0;
  for (const Csr& panel : panels) {
    const auto panel_offsets = panel.row_offsets();
    for (index_t r = 0; r < panel.rows(); ++r) {
      offsets.push_back(base + panel_offsets[static_cast<std::size_t>(r) + 1]);
    }
    out_cols.insert(out_cols.end(), panel.col_indices().begin(),
                    panel.col_indices().end());
    out_vals.insert(out_vals.end(), panel.values().begin(), panel.values().end());
    base += panel.nnz();
  }
  return Csr(rows, cols, std::move(offsets), std::move(out_cols), std::move(out_vals));
}

SpGemmResult PartialSpeck::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  diagnostics_ = PartialDiagnostics{};

  // Panel planning needs products per row; this is the same O(NNZ_A) scan
  // the per-panel row analysis performs, so the planning cost is charged as
  // one extra analysis-like pass.
  std::vector<offset_t> row_products(static_cast<std::size_t>(a.rows()), 0);
  const auto b_offsets = b.row_offsets();
  for (index_t r = 0; r < a.rows(); ++r) {
    offset_t p = 0;
    for (const index_t k : a.row_cols(r)) {
      p += b_offsets[static_cast<std::size_t>(k) + 1] -
           b_offsets[static_cast<std::size_t>(k)];
    }
    row_products[static_cast<std::size_t>(r)] = p;
  }
  const auto panels = plan_panels(row_products, config_.max_products_per_panel);

  SpGemmResult result;
  std::vector<Csr> panel_results;
  panel_results.reserve(panels.size());
  std::size_t peak_panel_memory = 0;
  Speck panel_speck(device_, model_, config_.speck);
  for (const auto& [begin, end] : panels) {
    const Csr panel = extract_row_panel(a, begin, end);
    SpGemmResult panel_result = panel_speck.multiply(panel, b);
    if (!panel_result.ok()) {
      result.status = panel_result.status;
      result.failure_reason = "panel [" + std::to_string(begin) + ", " +
                              std::to_string(end) + "): " +
                              panel_result.failure_reason;
      return result;
    }
    for (int stage = 0; stage < sim::kStageCount; ++stage) {
      result.timeline.add(static_cast<sim::Stage>(stage),
                          panel_result.timeline.seconds(static_cast<sim::Stage>(stage)));
    }
    peak_panel_memory = std::max(peak_panel_memory, panel_result.peak_memory_bytes);

    offset_t panel_products = 0;
    for (index_t r = begin; r < end; ++r) {
      panel_products += row_products[static_cast<std::size_t>(r)];
    }
    diagnostics_.largest_panel_products =
        std::max(diagnostics_.largest_panel_products, panel_products);
    diagnostics_.largest_panel_rows =
        std::max(diagnostics_.largest_panel_rows, end - begin);
    panel_results.push_back(std::move(panel_result.c));
  }
  diagnostics_.panels = static_cast<int>(panels.size());

  result.c = concat_row_panels(panel_results);
  if (config_.stream_output_to_host) {
    // Finished panels leave the device before the next panel starts: the
    // device peak is one panel's working set; the transfers cost PCIe time.
    result.timeline.add(sim::Stage::kOther,
                        static_cast<double>(result.c.byte_size()) /
                            config_.pcie_bandwidth);
    result.peak_memory_bytes = peak_panel_memory;
  } else {
    // Output accumulates on the device alongside the running panel.
    result.peak_memory_bytes = peak_panel_memory + result.c.byte_size();
  }
  result.seconds = result.timeline.total_seconds();
  return result;
}

}  // namespace speck
