// Auto-tuner for the global load-balancing thresholds (paper §5, Table 2).
//
// For every training matrix we measure the four on/off combinations of the
// symbolic and numeric balancer, then run a coordinate line search over the
// eight threshold parameters minimizing the *average slowdown* relative to
// the per-matrix best combination — exactly the loss the paper optimizes.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "matrix/csr.h"
#include "speck/speck.h"

namespace speck {

/// Measurements for one training matrix.
struct TuningSample {
  /// seconds[s][n]: symbolic LB s in {off=0, on=1}, numeric LB n likewise.
  double seconds[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  LbDecisionStats symbolic_decision;
  LbDecisionStats numeric_decision;
};

/// Runs spECK four times on the matrix and collects the sample.
TuningSample measure_tuning_sample(Speck& speck, const Csr& a, const Csr& b);

struct TuningResult {
  SpeckThresholds thresholds;
  /// Mean slowdown over the training set with the tuned thresholds
  /// (1.0 = always picking the best combination).
  double mean_slowdown = 1.0;
  /// Fraction of matrices where the tuned rule selects the fastest of the
  /// four combinations.
  double best_pick_fraction = 0.0;
};

/// Loss of a candidate threshold set over a sample set.
double tuning_loss(std::span<const TuningSample> samples,
                   const SpeckThresholds& thresholds);

/// Coordinate line search from the given starting point. `sweeps` full
/// passes over the eight parameters.
TuningResult tune_thresholds(std::span<const TuningSample> samples,
                             SpeckThresholds start = {}, int sweeps = 3);

/// K-fold split helper for the paper's inverse 3-fold cross validation
/// (train on one fold, evaluate on the other two).
std::vector<std::vector<std::size_t>> k_folds(std::size_t count, int k,
                                              std::uint64_t seed);

}  // namespace speck
