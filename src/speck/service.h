// Concurrent SpGEMM serving layer: many client threads, one Speck.
//
// The PR-4 structure-reuse win (a ~4.4x values-only replay) only monetizes
// at scale when plans are shared, evicted and replayed by many clients at
// once — the iterated fixed-pattern workloads (AMG cycles, graph analytics)
// that dominate SpGEMM serving traffic. SpeckService provides that:
//
//  - a sharded LRU PlanCache keyed by full structural fingerprint; hits
//    hand out immutable shared_ptr<const SpeckPlan> references,
//  - a lock-free replay path: cache hits run Speck's const, member-state-
//    free replay on the calling thread (per-client leased workspaces, no
//    global lock, zero steady-state heap allocations via multiply_into),
//  - a single planning mutex only on the miss path (building a plan runs
//    the full mutable pipeline; the planning run's own result serves the
//    first request, so nothing is computed twice),
//  - admission control on a global MemoryBudget: a request whose in-flight
//    memory cannot fit is rejected with kResourceExhausted (or queued until
//    capacity frees, in queue mode) instead of driving the process OOM.
//
// Request-lifecycle hardening (docs/service.md "Failure semantics"):
//
//  - per-request deadlines (RequestOptions::deadline) checked at admission,
//    inside the budget wait, at plan-mutex acquisition and between pipeline
//    phases (CancelToken into Speck::plan); expired requests answer
//    kDeadlineExceeded with a retry_after hint instead of hanging,
//  - bounded queueing + load shedding: max_queued_requests caps concurrent
//    budget waiters with a LIFO-shed-oldest overflow policy, max_queue_wait
//    caps any single wait; shed requests answer kResourceExhausted,
//  - degraded-mode execution: under pressure (or for quarantined patterns)
//    a cache-bypassing exact host path serves correct results without
//    planning or caching,
//  - quarantine: N consecutive plan-build failures circuit-break that
//    fingerprint to the degraded path for a cooldown, so one poisoned
//    input cannot serialize the plan mutex for everyone,
//  - service-level fault injection (ServiceConfig::faults): forced plan
//    failures, injected planning latency, admission budget squeeze and
//    eviction storms, driven by `speckd --chaos`.
//
// While a service wraps a Speck instance, all concurrent access must go
// through the service — the legacy single-caller Speck entry points mutate
// member state (docs/service.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "speck/plan_cache.h"
#include "speck/speck.h"
#include "speck/workspace.h"

namespace speck {

/// Global byte budget with blocking and non-blocking admission. Tracks the
/// in-flight bytes of admitted requests; a request larger than the whole
/// budget can never be admitted and always fails fast.
class MemoryBudget {
 public:
  /// Why a blocking admission returned.
  enum class Admit {
    kAdmitted,   ///< bytes acquired
    kRejected,   ///< would not fit right now (non-blocking path)
    kTimedOut,   ///< the deadline expired while waiting
    kShed,       ///< evicted from a full wait queue by a newer request
    kNeverFits,  ///< larger than the whole budget; waiting cannot help
  };

  explicit MemoryBudget(std::size_t limit_bytes) : limit_(limit_bytes) {}

  /// Admits `bytes` now or returns false (never blocks).
  bool try_acquire(std::size_t bytes);

  /// Blocks until `bytes` fit, then admits them. Returns false only when
  /// `bytes` exceeds the whole budget (waiting could never succeed).
  bool acquire(std::size_t bytes);

  /// Bounded blocking admission: waits until `bytes` fit, `deadline`
  /// expires, or this waiter is shed. When `max_waiters` > 0 and the wait
  /// queue is already full, the OLDEST waiter is shed to make room for
  /// this newest one ("LIFO-shed-oldest": under overload the newest
  /// requests still have deadline budget worth spending; the oldest have
  /// already burned most of theirs and would miss anyway). A shed waiter
  /// wakes with kShed. `*waited` (when non-null) is set to whether the
  /// call had to enter the wait queue at all — a per-request queueing
  /// signal for latency accounting.
  Admit acquire_until(std::size_t bytes, const Deadline& deadline,
                      std::size_t max_waiters = 0, bool* waited = nullptr);

  /// Returns admitted bytes. Releasing more than is currently admitted is
  /// an accounting bug (double release) — it throws InternalError and
  /// leaves the counter unchanged so the corruption cannot spread into
  /// admission decisions.
  void release(std::size_t bytes);

  std::size_t limit() const { return limit_; }
  std::size_t used() const;
  /// Requests currently blocked in acquire_until (a queue-pressure signal;
  /// feeds retry_after hints).
  std::size_t waiters() const;

 private:
  struct Waiter {
    bool shed = false;  ///< guarded by mutex_
  };

  std::size_t limit_;
  mutable std::mutex mutex_;
  std::condition_variable freed_;
  std::size_t used_ = 0;           ///< guarded by mutex_
  std::deque<Waiter*> waiters_;    ///< oldest first; guarded by mutex_
};

struct ServiceConfig {
  /// Shards of the service's plan cache (contention, not capacity).
  int cache_shards = 8;
  /// Byte budget across all cached plans (SpeckPlan::byte_size accounting).
  std::size_t cache_limit_bytes = 512u << 20;
  /// Global in-flight memory budget for admission control; 0 disables it.
  /// Covers per-request response memory and plan-build estimates.
  std::size_t memory_budget_bytes = 0;
  /// Over-budget requests wait for capacity instead of being rejected.
  bool queue_on_budget = false;
  /// Bounded admission queue (queue mode): > 0 caps how many requests may
  /// block on the budget at once; on overflow the oldest waiter is shed
  /// (kResourceExhausted + retry_after). 0 = unbounded (legacy behavior).
  std::size_t max_queued_requests = 0;
  /// Caps any single wait (budget queue or plan mutex) in milliseconds,
  /// independent of the request deadline; a request that hits this cap is
  /// shed, not timed out. 0 = wait as long as the deadline allows.
  double max_queue_wait_ms = 0.0;
  /// Serve pressure-rejected misses and quarantined patterns through the
  /// degraded path (exact host reference multiply, no plan, no caching)
  /// instead of failing them. Correct but slow — the safety valve.
  bool degraded_mode = false;
  /// Circuit breaker: this many consecutive plan-build failures for one
  /// fingerprint quarantine the pattern to the degraded path for
  /// `quarantine_cooldown_ms` (0 disables quarantine). Deadline expiries do
  /// not count — they say nothing about the input.
  int quarantine_threshold = 3;
  /// How long a tripped pattern stays quarantined before plan building is
  /// retried.
  double quarantine_cooldown_ms = 250.0;
  /// Service-level chaos faults (plan_fail_mod / plan_delay_ms /
  /// admission_bytes_scale / evict_every). Pipeline-side fields of the spec
  /// are ignored here — set those on SpeckConfig::faults.
  FaultSpec faults;
};

/// Monotonic service counters plus a cache snapshot.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t replays = 0;      ///< served from a cached plan
  std::uint64_t plans_built = 0;  ///< misses that built + cached a plan
  std::uint64_t full_runs = 0;    ///< misses served by the full pipeline only
  std::uint64_t rejected = 0;     ///< admission-control rejections
  std::uint64_t shed = 0;         ///< load-shed (queue overflow / wait cap)
  std::uint64_t timed_out = 0;    ///< deadline expired (kDeadlineExceeded)
  std::uint64_t degraded = 0;     ///< served by the degraded path
  std::uint64_t quarantine_trips = 0;  ///< circuit-breaker activations
  /// Rows whose sampled NNZ estimate underflowed during an estimated-planning
  /// build and re-ran through the exact fallback (always 0 under exact
  /// planning). High values relative to rows planned mean the estimator's
  /// safety margin is too tight for this workload.
  std::uint64_t estimator_fallback_rows = 0;
  /// Two-level-executor telemetry from plan builds (SpeckConfig::partitions
  /// > 1; both stay 0 / 1.0-ish with the flat executor): total chunks teams
  /// claimed from foreign partitions, and the worst per-build team-seconds
  /// imbalance (max team seconds / mean). Schedule-dependent diagnostics —
  /// useful for spotting a skewed corpus or a partition count that outruns
  /// the thread count, never part of bit-identity gates.
  std::uint64_t partition_steals = 0;
  double worst_partition_imbalance = 0.0;
  PlanCacheStats cache;
};

class SpeckService {
 public:
  /// Wraps `speck` (not owned; must outlive the service). The service keeps
  /// its own PlanCache — Speck's transparent cache stays untouched, so a
  /// Speck can be handed to a service mid-life without invalidating
  /// anything. Cold-miss plan builds inherit the wrapped Speck's
  /// SpeckConfig::planning: estimated planning shrinks the serialized
  /// plan-mutex window (the build skips the exact symbolic pass), so misses
  /// convoy for less time; plans built under each mode carry distinct
  /// fingerprints and never serve each other's lookups.
  explicit SpeckService(Speck& speck, ServiceConfig config = {});

  /// Per-request options. Default-constructed == no deadline.
  struct RequestOptions {
    /// Absolute request deadline; expired requests answer
    /// kDeadlineExceeded (with retry_after) instead of waiting or running.
    Deadline deadline;
  };

  struct Response {
    Status status;
    /// The product (owned) — empty for multiply_into, whose values land in
    /// the caller's buffer and whose pattern is shared via the plan.
    Csr c;
    double seconds = 0.0;  ///< simulated GPU seconds of this request
    bool replayed = false;  ///< served by a values-only plan replay
    bool planned = false;   ///< this request built (and cached) the plan
    bool degraded = false;  ///< served by the cache-bypassing degraded path
    /// The request waited — on the plan mutex or in the budget queue —
    /// before being served. Requests with `replayed && !queued` took the
    /// pure lock-free fast path (what chaos tail-latency gates compare).
    bool queued = false;
    /// Backoff hint in seconds for kResourceExhausted / kDeadlineExceeded
    /// answers (0 = none): grows with current queue pressure.
    double retry_after = 0.0;
    offset_t c_nnz = 0;
    bool ok() const { return status.ok(); }
  };

  /// Full-service multiply: replay on a cache hit, plan-and-cache on the
  /// structure's second appearance (first request per pattern runs the full
  /// pipeline, exactly like Speck::multiply, but across all clients).
  /// Thread-safe.
  Response multiply(const Csr& a, const Csr& b,
                    const RequestOptions& opts = {});

  /// Zero-allocation variant: values land in `out` (resized to c_nnz; with
  /// retained capacity the steady state allocates nothing), the pattern is
  /// shared via the cached plan. Requires the pattern's plan to be cached
  /// or buildable; thread-safe. Degraded responses fill `out` too (their
  /// pattern is dropped — callers needing it use multiply()).
  Response multiply_into(const Csr& a, const Csr& b,
                         std::vector<value_t>& out,
                         const RequestOptions& opts = {});

  /// The cached plan for (a, b), building and caching it on a miss. Null on
  /// build failure (with `*status` set when non-null). Thread-safe.
  std::shared_ptr<const SpeckPlan> plan_for(const Csr& a, const Csr& b,
                                            Status* status = nullptr);

  /// Leasable workspace pool for client-side staging buffers (speckd and
  /// bench_service lease one workspace per in-flight request and replay
  /// into its replay_values() buffer).
  WorkspacePool& client_workspaces() { return client_workspaces_; }

  ServiceStats stats() const;
  PlanCache& cache() { return cache_; }
  MemoryBudget& budget() { return budget_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// Shared serve path; `out` selects the into-variant.
  Response serve(const Csr& a, const Csr& b, std::vector<value_t>* out,
                 const RequestOptions& opts);

  /// Degraded path: exact host-reference multiply, no plan, no cache, no
  /// budget accounting (the safety valve must not be throttled by the very
  /// pressure it relieves). `why` labels the response status on failure.
  Response serve_degraded(const Csr& a, const Csr& b,
                          std::vector<value_t>* out, const char* why);

  /// Admission byte charge after the chaos admission_bytes_scale squeeze
  /// (applied symmetrically at acquire and release).
  std::size_t admission_bytes(std::size_t bytes) const;

  /// Admission for `bytes` of in-flight memory per the configured mode,
  /// bounded by the request deadline and max_queue_wait. `*waited` (when
  /// non-null) reports whether the request had to queue.
  MemoryBudget::Admit admit(std::size_t bytes, const Deadline& deadline,
                            bool* waited = nullptr);

  /// Maps a failed admission outcome into `resp` (status + retry_after +
  /// stats counters). Returns true when the outcome was a failure.
  bool fail_admission(MemoryBudget::Admit outcome, std::size_t bytes,
                      const Deadline& deadline, Response* resp);

  /// The deadline actually used for waits: `deadline` capped by
  /// max_queue_wait_ms.
  Deadline wait_deadline(const Deadline& deadline) const;

  /// Suggested client backoff in seconds, scaled by queue pressure.
  double retry_hint() const;

  // Quarantine bookkeeping, keyed by plan_key_hash(fingerprint).
  bool is_quarantined(std::uint64_t key);
  void note_plan_failure(std::uint64_t key);
  void note_plan_success(std::uint64_t key);

  /// Folds a finished plan build's pipeline diagnostics into the monotonic
  /// counters (estimator fallbacks, partition steals / imbalance).
  void note_build_diagnostics(const SpeckDiagnostics& diagnostics);

  Speck& speck_;
  ServiceConfig config_;
  PlanCache cache_;
  MemoryBudget budget_;
  WorkspacePool client_workspaces_;
  /// Serializes the full pipeline on misses; timed so deadline-bounded
  /// requests can give up instead of convoying behind a slow build.
  std::timed_mutex plan_mutex_;

  struct QuarantineState {
    int consecutive_failures = 0;
    Deadline::Clock::time_point until{};  ///< quarantined while now < until
  };
  std::mutex quarantine_mutex_;
  std::unordered_map<std::uint64_t, QuarantineState> quarantine_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::uint64_t> plans_built_{0};
  std::atomic<std::uint64_t> full_runs_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> quarantine_trips_{0};
  std::atomic<std::uint64_t> estimator_fallback_rows_{0};
  std::atomic<std::uint64_t> partition_steals_{0};
  /// Bit pattern of the worst imbalance ratio seen so far. Non-negative
  /// doubles order the same as their bit patterns, so a CAS-max on the
  /// uint64 representation is a lock-free running maximum.
  std::atomic<std::uint64_t> worst_partition_imbalance_bits_{0};
};

}  // namespace speck
