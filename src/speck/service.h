// Concurrent SpGEMM serving layer: many client threads, one Speck.
//
// The PR-4 structure-reuse win (a ~4.4x values-only replay) only monetizes
// at scale when plans are shared, evicted and replayed by many clients at
// once — the iterated fixed-pattern workloads (AMG cycles, graph analytics)
// that dominate SpGEMM serving traffic. SpeckService provides that:
//
//  - a sharded LRU PlanCache keyed by full structural fingerprint; hits
//    hand out immutable shared_ptr<const SpeckPlan> references,
//  - a lock-free replay path: cache hits run Speck's const, member-state-
//    free replay on the calling thread (per-client leased workspaces, no
//    global lock, zero steady-state heap allocations via multiply_into),
//  - a single planning mutex only on the miss path (building a plan runs
//    the full mutable pipeline; the planning run's own result serves the
//    first request, so nothing is computed twice),
//  - admission control on a global MemoryBudget: a request whose in-flight
//    memory cannot fit is rejected with kResourceExhausted (or queued until
//    capacity frees, in queue mode) instead of driving the process OOM.
//
// While a service wraps a Speck instance, all concurrent access must go
// through the service — the legacy single-caller Speck entry points mutate
// member state (docs/service.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "speck/plan_cache.h"
#include "speck/speck.h"
#include "speck/workspace.h"

namespace speck {

/// Global byte budget with blocking and non-blocking admission. Tracks the
/// in-flight bytes of admitted requests; a request larger than the whole
/// budget can never be admitted and always fails fast.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::size_t limit_bytes) : limit_(limit_bytes) {}

  /// Admits `bytes` now or returns false (never blocks).
  bool try_acquire(std::size_t bytes);

  /// Blocks until `bytes` fit, then admits them. Returns false only when
  /// `bytes` exceeds the whole budget (waiting could never succeed).
  bool acquire(std::size_t bytes);

  void release(std::size_t bytes);

  std::size_t limit() const { return limit_; }
  std::size_t used() const;

 private:
  std::size_t limit_;
  mutable std::mutex mutex_;
  std::condition_variable freed_;
  std::size_t used_ = 0;  ///< guarded by mutex_
};

struct ServiceConfig {
  /// Shards of the service's plan cache (contention, not capacity).
  int cache_shards = 8;
  /// Byte budget across all cached plans (SpeckPlan::byte_size accounting).
  std::size_t cache_limit_bytes = 512u << 20;
  /// Global in-flight memory budget for admission control; 0 disables it.
  /// Covers per-request response memory and plan-build estimates.
  std::size_t memory_budget_bytes = 0;
  /// Over-budget requests wait for capacity instead of being rejected.
  bool queue_on_budget = false;
};

/// Monotonic service counters plus a cache snapshot.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t replays = 0;      ///< served from a cached plan
  std::uint64_t plans_built = 0;  ///< misses that built + cached a plan
  std::uint64_t full_runs = 0;    ///< misses served by the full pipeline only
  std::uint64_t rejected = 0;     ///< admission-control rejections
  PlanCacheStats cache;
};

class SpeckService {
 public:
  /// Wraps `speck` (not owned; must outlive the service). The service keeps
  /// its own PlanCache — Speck's transparent cache stays untouched, so a
  /// Speck can be handed to a service mid-life without invalidating
  /// anything.
  explicit SpeckService(Speck& speck, ServiceConfig config = {});

  struct Response {
    Status status;
    /// The product (owned) — empty for multiply_into, whose values land in
    /// the caller's buffer and whose pattern is shared via the plan.
    Csr c;
    double seconds = 0.0;  ///< simulated GPU seconds of this request
    bool replayed = false;  ///< served by a values-only plan replay
    bool planned = false;   ///< this request built (and cached) the plan
    offset_t c_nnz = 0;
    bool ok() const { return status.ok(); }
  };

  /// Full-service multiply: replay on a cache hit, plan-and-cache on the
  /// structure's second appearance (first request per pattern runs the full
  /// pipeline, exactly like Speck::multiply, but across all clients).
  /// Thread-safe.
  Response multiply(const Csr& a, const Csr& b);

  /// Zero-allocation variant: values land in `out` (resized to c_nnz; with
  /// retained capacity the steady state allocates nothing), the pattern is
  /// shared via the cached plan. Requires the pattern's plan to be cached
  /// or buildable; thread-safe.
  Response multiply_into(const Csr& a, const Csr& b,
                         std::vector<value_t>& out);

  /// The cached plan for (a, b), building and caching it on a miss. Null on
  /// build failure (with `*status` set when non-null). Thread-safe.
  std::shared_ptr<const SpeckPlan> plan_for(const Csr& a, const Csr& b,
                                            Status* status = nullptr);

  /// Leasable workspace pool for client-side staging buffers (speckd and
  /// bench_service lease one workspace per in-flight request and replay
  /// into its replay_values() buffer).
  WorkspacePool& client_workspaces() { return client_workspaces_; }

  ServiceStats stats() const;
  PlanCache& cache() { return cache_; }
  MemoryBudget& budget() { return budget_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// Shared serve path; `out` selects the into-variant.
  Response serve(const Csr& a, const Csr& b, std::vector<value_t>* out);

  /// Admission for `bytes` of in-flight memory per the configured mode.
  /// Returns false when the request must be rejected.
  bool admit(std::size_t bytes);

  Speck& speck_;
  ServiceConfig config_;
  PlanCache cache_;
  MemoryBudget budget_;
  WorkspacePool client_workspaces_;
  std::mutex plan_mutex_;  ///< serializes the full pipeline on misses

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::uint64_t> plans_built_{0};
  std::atomic<std::uint64_t> full_runs_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace speck
