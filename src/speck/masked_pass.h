// Masked numeric pass: C = (A · B) ∘ mask with GraphBLAS structural
// semantics (docs/performance.md "Masked SpGEMM").
//
// The mask row *is* the candidate pattern of the output row, so the
// symbolic pass is skipped entirely: the numeric pass runs once, straight
// off the row analysis, with per-row staging capped by
// min(products, mask_row_nnz) — a bound the actual output can never exceed,
// so unlike estimated planning there is no fallback re-run. A mask column
// is emitted iff at least one intermediate product lands on it; computed
// zeros are kept, untouched mask entries are dropped (matching the
// masked_spgemm oracle in src/ref/masked.h).
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"
#include "speck/global_lb.h"
#include "speck/kernels.h"

namespace speck {

struct MaskedNumericOutcome {
  Csr c;
  /// Exact NNZ per row of C (touched mask columns).
  std::vector<index_t> row_nnz;
  PassStats stats;
};

/// Runs the masked numeric pass over the given block plan. `ctx.mask` must
/// be set (an m×n CSR aligned with C); `masked_demand` is the per-row
/// staging cap min(products, mask_row_nnz). Every masked accumulation adds
/// into an implicit zero (0.0 + p on first touch, never an assign), which is
/// what keeps the kernels, the oracle and the values-only replay
/// bit-identical. Output rows emerge in mask-column order — already sorted —
/// so no sort pass follows.
MaskedNumericOutcome run_numeric_masked(const KernelContext& ctx,
                                        const BinPlan& plan,
                                        std::span<const index_t> masked_demand);

}  // namespace speck
