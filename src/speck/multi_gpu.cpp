#include "speck/multi_gpu.h"

#include <algorithm>

#include "speck/partial.h"

namespace speck {

std::vector<std::pair<index_t, index_t>> partition_rows_balanced(
    std::span<const offset_t> row_products, int parts) {
  SPECK_REQUIRE(parts >= 1, "parts must be positive");
  const auto rows = static_cast<index_t>(row_products.size());
  offset_t total = 0;
  for (const offset_t p : row_products) total += p;

  std::vector<std::pair<index_t, index_t>> partition;
  partition.reserve(static_cast<std::size_t>(parts));
  index_t begin = 0;
  offset_t running = 0;
  for (int part = 0; part < parts; ++part) {
    if (part + 1 == parts) {
      // The last part takes every remaining row.
      partition.emplace_back(begin, rows);
      break;
    }
    // Cut where the running product volume reaches this part's prefix share.
    const offset_t target = total * (part + 1) / parts;
    index_t end = begin;
    while (end < rows && running < target) {
      running += row_products[static_cast<std::size_t>(end)];
      ++end;
    }
    partition.emplace_back(begin, end);
    begin = end;
  }
  return partition;
}

SpGemmResult MultiGpuSpeck::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  diagnostics_ = MultiGpuDiagnostics{};

  std::vector<offset_t> row_products(static_cast<std::size_t>(a.rows()), 0);
  const auto b_offsets = b.row_offsets();
  for (index_t r = 0; r < a.rows(); ++r) {
    offset_t p = 0;
    for (const index_t k : a.row_cols(r)) {
      p += b_offsets[static_cast<std::size_t>(k) + 1] -
           b_offsets[static_cast<std::size_t>(k)];
    }
    row_products[static_cast<std::size_t>(r)] = p;
  }
  const auto partition = partition_rows_balanced(row_products, config_.gpus);

  // Remote-reference fraction under shared (distributed) B storage: B's rows
  // are split evenly across devices; device d owns rows [d*n/G, (d+1)*n/G).
  offset_t remote_refs = 0;
  offset_t total_refs = 0;
  if (!config_.replicate_b) {
    const auto b_rows = static_cast<std::int64_t>(b.rows());
    for (int device_id = 0; device_id < config_.gpus; ++device_id) {
      const auto [begin, end] = partition[static_cast<std::size_t>(device_id)];
      const std::int64_t own_lo = b_rows * device_id / config_.gpus;
      const std::int64_t own_hi = b_rows * (device_id + 1) / config_.gpus;
      for (index_t r = begin; r < end; ++r) {
        for (const index_t k : a.row_cols(r)) {
          ++total_refs;
          if (k < own_lo || k >= own_hi) ++remote_refs;
        }
      }
    }
  }
  diagnostics_.remote_reference_fraction =
      total_refs > 0 ? static_cast<double>(remote_refs) /
                           static_cast<double>(total_refs)
                     : 0.0;

  SpGemmResult result;
  const std::size_t devices = partition.size();
  std::vector<Csr> panels(devices);
  std::vector<SpGemmResult> panel_results(devices);
  std::vector<PartitionDiag> panel_partition(devices);
  diagnostics_.device_seconds.assign(devices, 0.0);
  diagnostics_.device_products.assign(devices, 0);

  // Panels run concurrently, one indexed slot per device — like every
  // other loop in the repo, results are a pure function of the partition,
  // not of the schedule. Each panel gets its own Speck instance (mutable
  // per-multiply state); the pipeline's nested parallel_for calls run
  // inline on the panel's worker, and with speck.partitions > 1 each
  // panel's host execution itself goes through the two-level executor.
  global_pool().parallel_for(
      devices, 1, [&](std::size_t d, std::size_t, int) {
        const auto [begin, end] = partition[d];
        if (begin == end) {
          panels[d] = Csr::zeros(0, b.cols());
          panel_results[d].status = SpGemmStatus::kOk;
          return;
        }
        Speck panel_speck(device_, model_, config_.speck);
        const Csr panel = extract_row_panel(a, begin, end);
        panel_results[d] = panel_speck.multiply(panel, b);
        panel_partition[d] = panel_speck.last_diagnostics().partition;
      });

  double makespan = 0.0;
  double total_device_seconds = 0.0;
  std::size_t peak_device_memory = 0;
  for (std::size_t d = 0; d < devices; ++d) {
    const auto [begin, end] = partition[d];
    if (begin == end) continue;
    SpGemmResult& panel_result = panel_results[d];
    if (!panel_result.ok()) {
      result.status = panel_result.status;
      result.failure_reason = panel_result.failure_reason;
      return result;
    }
    double seconds = panel_result.seconds;
    if (!config_.replicate_b && diagnostics_.remote_reference_fraction > 0.0) {
      // Remote rows stream at interconnect bandwidth: dilate the
      // memory-bound share of the panel time accordingly.
      const double dilation =
          1.0 + config_.memory_bound_share * diagnostics_.remote_reference_fraction *
                    (1.0 / config_.interconnect_bandwidth_fraction - 1.0);
      seconds *= dilation;
    }
    offset_t panel_products = 0;
    for (index_t r = begin; r < end; ++r) {
      panel_products += row_products[static_cast<std::size_t>(r)];
    }
    diagnostics_.device_seconds[d] = seconds;
    diagnostics_.device_products[d] = panel_products;
    makespan = std::max(makespan, seconds);
    total_device_seconds += seconds;
    peak_device_memory = std::max(peak_device_memory, panel_result.peak_memory_bytes);
    diagnostics_.steal_count += panel_partition[d].steal_count();
    diagnostics_.worst_imbalance_ratio = std::max(
        diagnostics_.worst_imbalance_ratio, panel_partition[d].imbalance_ratio());
    panels[d] = std::move(panel_result.c);
  }
  diagnostics_.parallel_efficiency =
      makespan > 0.0
          ? total_device_seconds / (makespan * static_cast<double>(config_.gpus))
          : 1.0;

  result.c = concat_row_panels(panels);
  result.seconds = makespan;
  result.timeline.add(sim::Stage::kNumeric, makespan);
  // Per-device peak: panel working set, plus B when replicated (already
  // counted inside the panel run) — report the worst device.
  result.peak_memory_bytes = peak_device_memory;
  return result;
}

}  // namespace speck
