// Flat open-addressing spill map — the global-memory fallback storage of the
// hash accumulators (paper §4.3 "Sparse Rows of C").
//
// Replaces the node-based std::unordered_set/std::unordered_map the
// accumulators used to spill into: one contiguous slot array, linear
// probing, power-of-two capacity, and epoch-tagged slot groups so `clear()`
// is O(1) and a per-worker workspace can reuse the same map (and its grown
// capacity) across every block it executes. Spilling is rare — only rows the
// binning could not bound reach it — but when it fires it used to dominate
// the block's allocation count; with this map the steady-state spill path
// allocates nothing.
//
// Layout mirrors DeviceHashMap: Swiss-table-style control bytes (a 7-bit
// hash tag per occupied slot, kEmpty otherwise) in 16-byte groups over SoA
// key/value arrays. The SIMD backends compare a whole group per instruction;
// the scalar backend walks the same bytes one at a time. Both visit the same
// probe sequence and claim the same slots, so contents and iteration order
// are bit-identical across backends. Group epochs are lazily re-materialized
// after `clear()`, keeping the O(1)-reset invariant from the epoch-tagged
// design this layout replaces.
//
// Iteration order is slot order. The accumulators only consume it through
// order-insensitive reductions (per-row counts, per-key sums later sorted by
// their unique keys), so simulated cost and numeric output stay bit-identical
// regardless of the layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/simd.h"
#include "common/types.h"

namespace speck {

class FlatSpillMap {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots currently reserved (diagnostic; persists across clear()).
  std::size_t slot_count() const { return slot_count_; }

  /// SIMD backend used by the probe loops (must be resolved, never kAuto).
  void set_backend(SimdBackend backend) { backend_ = backend; }

  /// Membership insert (symbolic spill). Returns true when the key was new.
  bool insert(key64_t key);

  /// Adds `value` to the slot for `key`, creating it at 0 (numeric spill).
  void accumulate(key64_t key, value_t value);

  /// Masked-insert mode: pre-seeds `key` as an admissible slot (value zero,
  /// untouched), growing like any other insert. Returns true when new.
  bool seed(key64_t key);

  /// Masked accumulate: adds into `key`'s slot only when it was seeded,
  /// marking it touched; a miss claims nothing and never grows the table.
  bool accumulate_if_present(key64_t key, value_t value);

  /// Reads a seeded slot back: true (with the sum in `*value`) iff the slot
  /// was touched since seeding. Never grows the table.
  bool lookup_touched(key64_t key, value_t* value);

  /// Visits every occupied slot in slot order with fn(key, value). Whole
  /// stale groups (untouched since the last clear) are skipped 16 slots at
  /// a time. The vector backends reduce each group to one occupied-lane
  /// mask and walk its set bits ascending — the same slot order as the
  /// scalar byte scan.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t groups = slot_count_ / simd::kGroupWidth;
    if (backend_ != SimdBackend::kScalar) {
      for (std::size_t g = 0; g < groups; ++g) {
        if (group_epoch_[g] != epoch_) continue;
        const std::size_t base = g * simd::kGroupWidth;
        std::uint32_t occ = simd::occupied_mask16(ctrl_.data() + base, backend_);
        while (occ != 0) {
          const unsigned p = simd::lowest_bit(occ);
          fn(keys_[base + p], vals_[base + p]);
          occ &= occ - 1;
        }
      }
      return;
    }
    for (std::size_t g = 0; g < groups; ++g) {
      if (group_epoch_[g] != epoch_) continue;
      const std::size_t base = g * simd::kGroupWidth;
      for (std::size_t i = base; i < base + simd::kGroupWidth; ++i) {
        if (ctrl_[i] < kCtrlEmpty) fn(keys_[i], vals_[i]);
      }
    }
  }

  /// Forgets all entries, keeping the grown slot storage. O(1).
  void clear();

 private:
  static constexpr std::uint8_t kCtrlEmpty = 0x80;
  static constexpr std::uint64_t kHashPrime = 0x9E3779B97F4A7C15ull;

  /// Multiplicative hash; the high bits feed the power-of-two mask.
  std::size_t slot_for(std::uint64_t h) const {
    return static_cast<std::size_t>(h >> 32) & (slot_count_ - 1);
  }
  static std::uint8_t hash_tag(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 57);
  }

  void materialize_group(std::size_t g) {
    if (group_epoch_[g] == epoch_) return;
    std::memset(ctrl_.data() + g * simd::kGroupWidth, kCtrlEmpty,
                simd::kGroupWidth);
    group_epoch_[g] = epoch_;
  }

  /// Returns the slot holding `key` (claimed == true) or the empty slot to
  /// claim for it (claimed == false), growing first when the load factor
  /// would exceed the limit.
  struct Locate {
    std::size_t index;
    bool present;
  };
  Locate locate(key64_t key);
  /// Probe without the grow step — lookups must not resize the table. The
  /// ≤75% load factor maintained by `locate` guarantees termination.
  Locate find(key64_t key);
  void grow();

  std::vector<std::uint8_t> ctrl_;
  std::vector<std::uint64_t> group_epoch_;
  std::vector<key64_t> keys_;
  std::vector<value_t> vals_;
  /// Masked mode only: 1 iff the seeded slot has been accumulated into.
  /// Written by seed(); carried across grow()'s re-place.
  std::vector<std::uint8_t> touched_;
  std::size_t slot_count_ = 0;  ///< power of two, multiple of kGroupWidth
  std::uint64_t epoch_ = 1;
  std::size_t size_ = 0;
  SimdBackend backend_ = SimdBackend::kScalar;
};

}  // namespace speck
