// Flat open-addressing spill map — the global-memory fallback storage of the
// hash accumulators (paper §4.3 "Sparse Rows of C").
//
// Replaces the node-based std::unordered_set/std::unordered_map the
// accumulators used to spill into: one contiguous slot array, linear
// probing, power-of-two capacity, and epoch-tagged slots so `clear()` is
// O(1) and a per-worker workspace can reuse the same map (and its grown
// capacity) across every block it executes. Spilling is rare — only rows the
// binning could not bound reach it — but when it fires it used to dominate
// the block's allocation count; with this map the steady-state spill path
// allocates nothing.
//
// Iteration order is slot order. The accumulators only consume it through
// order-insensitive reductions (per-row counts, per-key sums later sorted by
// their unique keys), so simulated cost and numeric output stay bit-identical
// to the node-based containers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace speck {

class FlatSpillMap {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots currently reserved (diagnostic; persists across clear()).
  std::size_t slot_count() const { return slots_.size(); }

  /// Membership insert (symbolic spill). Returns true when the key was new.
  bool insert(key64_t key);

  /// Adds `value` to the slot for `key`, creating it at 0 (numeric spill).
  void accumulate(key64_t key, value_t value);

  /// Visits every occupied slot in slot order with fn(key, value).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.epoch == epoch_) fn(s.key, s.value);
    }
  }

  /// Forgets all entries, keeping the grown slot storage. O(1).
  void clear();

 private:
  struct Slot {
    key64_t key = 0;
    value_t value = 0.0;
    std::uint64_t epoch = 0;  ///< occupied iff equal to the map's epoch
  };

  std::size_t slot_for(key64_t key) const {
    // Multiplicative hash; the high bits feed the power-of-two mask.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           (slots_.size() - 1);
  }

  /// Returns the slot holding `key`, claiming an empty one if absent
  /// (growing first when the load factor would exceed the limit).
  Slot& locate(key64_t key);
  void grow();

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
  std::size_t size_ = 0;
};

}  // namespace speck
