#include "speck/config.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/bit_utils.h"
#include "common/check.h"

namespace speck {

std::vector<KernelConfig> kernel_configs(const sim::DeviceSpec& device) {
  std::vector<KernelConfig> configs;
  // Build the halving ladder from the largest static config downwards ...
  int threads = device.max_threads_per_block;
  std::size_t smem = device.static_scratchpad_per_block;
  std::vector<KernelConfig> descending;
  for (int i = 0; i < 5; ++i) {
    descending.push_back(KernelConfig{threads, smem, false});
    threads /= 2;
    smem /= 2;
  }
  // ... then prepend the scratchpad opt-in config when the device has one.
  if (device.dynamic_scratchpad_per_block > device.static_scratchpad_per_block) {
    descending.insert(descending.begin(),
                      KernelConfig{device.max_threads_per_block,
                                   device.dynamic_scratchpad_per_block, true});
  }
  // Public order: smallest first.
  configs.assign(descending.rbegin(), descending.rend());
  return configs;
}

void validate(const SpeckConfig& config) {
  const auto check_pair = [](const LoadBalanceThresholds& t, const char* name) {
    SPECK_REQUIRE(t.ratio >= 0.0, std::string(name) + ": ratio must be >= 0");
    SPECK_REQUIRE(t.min_rows >= 0, std::string(name) + ": min_rows must be >= 0");
  };
  check_pair(config.thresholds.symbolic, "symbolic thresholds");
  check_pair(config.thresholds.symbolic_large, "symbolic large-kernel thresholds");
  check_pair(config.thresholds.numeric, "numeric thresholds");
  check_pair(config.thresholds.numeric_large, "numeric large-kernel thresholds");
  SPECK_REQUIRE(config.thresholds.symbolic_large_kernel_count >= 0 &&
                    config.thresholds.symbolic_large_kernel_count <= 6,
                "symbolic large-kernel count must be in [0, 6]");
  SPECK_REQUIRE(config.thresholds.numeric_large_kernel_count >= 0 &&
                    config.thresholds.numeric_large_kernel_count <= 6,
                "numeric large-kernel count must be in [0, 6]");
  SPECK_REQUIRE(config.max_numeric_fill > 0.0 && config.max_numeric_fill <= 1.0,
                "max_numeric_fill must be in (0, 1]");
  SPECK_REQUIRE(config.symbolic_dense_factor >= 1.0,
                "symbolic_dense_factor must be >= 1");
  SPECK_REQUIRE(config.dense_density_threshold > 0.0 &&
                    config.dense_density_threshold <= 1.0,
                "dense_density_threshold must be in (0, 1]");
  SPECK_REQUIRE(config.max_rows_per_block >= 1 && config.max_rows_per_block <= 32,
                "max_rows_per_block must be in [1, 32] (5-bit local row index)");
  SPECK_REQUIRE(config.features.fixed_group_size >= 1 &&
                    is_pow2(static_cast<std::uint64_t>(config.features.fixed_group_size)),
                "fixed_group_size must be a positive power of two");
  SPECK_REQUIRE(config.host_threads >= 0,
                "host_threads must be >= 0 (0 = process-wide default)");
  SPECK_REQUIRE(config.plan_cache_shards >= 1,
                "plan_cache_shards must be >= 1");
  SPECK_REQUIRE(simd::backend_available(config.simd_backend),
                std::string("simd_backend '") +
                    simd::backend_name(config.simd_backend) +
                    "' is not available on this CPU");
  SPECK_REQUIRE(config.partitions >= 0 && config.partitions <= 256,
                "partitions must be in [0, 256] (0 = SPECK_PARTITIONS / 1)");
  SPECK_REQUIRE(config.estimator_samples >= 1,
                "estimator_samples must be >= 1");
  SPECK_REQUIRE(config.estimator_safety_margin >= 1.0 &&
                    config.estimator_safety_margin <= 16.0,
                "estimator_safety_margin must be in [1, 16]");
  validate(config.faults);
}

std::string describe(const SpeckConfig& config) {
  const auto mode_name = [](GlobalLbMode mode) {
    switch (mode) {
      case GlobalLbMode::kAuto: return "auto";
      case GlobalLbMode::kAlwaysOn: return "on";
      case GlobalLbMode::kAlwaysOff: return "off";
    }
    return "?";
  };
  const auto pair = [](const LoadBalanceThresholds& t) {
    return std::to_string(t.ratio) + " / " + std::to_string(t.min_rows);
  };
  std::string out;
  out += "thresholds.symbolic        = " + pair(config.thresholds.symbolic) + "\n";
  out += "thresholds.symbolic_large  = " + pair(config.thresholds.symbolic_large) + "\n";
  out += "thresholds.numeric         = " + pair(config.thresholds.numeric) + "\n";
  out += "thresholds.numeric_large   = " + pair(config.thresholds.numeric_large) + "\n";
  out += "features.dense_accumulation= " +
         std::string(config.features.dense_accumulation ? "true" : "false") + "\n";
  out += "features.direct_rows       = " +
         std::string(config.features.direct_rows ? "true" : "false") + "\n";
  out += "features.dynamic_group_size= " +
         std::string(config.features.dynamic_group_size ? "true" : "false") + "\n";
  out += "features.block_merge       = " +
         std::string(config.features.block_merge ? "true" : "false") + "\n";
  out += "features.global_lb         = symbolic:" +
         std::string(mode_name(config.features.global_lb_symbolic)) + " numeric:" +
         std::string(mode_name(config.features.global_lb_numeric)) + "\n";
  out += "max_numeric_fill           = " + std::to_string(config.max_numeric_fill) + "\n";
  out += "symbolic_dense_factor      = " +
         std::to_string(config.symbolic_dense_factor) + "\n";
  out += "dense_density_threshold    = " +
         std::to_string(config.dense_density_threshold) + "\n";
  out += "max_rows_per_block         = " + std::to_string(config.max_rows_per_block) + "\n";
  out += "host_threads               = " + std::to_string(config.host_threads) +
         (config.host_threads == 0 ? " (process default)" : "") + "\n";
  out += "plan_cache                 = " +
         std::string(config.plan_cache ? "true" : "false") + "\n";
  out += "plan_cache_shards          = " +
         std::to_string(config.plan_cache_shards) + "\n";
  out += "plan_cache_limit_bytes     = " +
         std::to_string(config.plan_cache_limit_bytes) + "\n";
  out += "simd_backend               = " +
         std::string(simd::backend_name(config.simd_backend)) +
         (config.simd_backend == SimdBackend::kAuto
              ? " (resolves to " +
                    std::string(simd::backend_name(
                        simd::resolve_backend(SimdBackend::kAuto))) +
                    ")"
              : "") +
         "\n";
  out += "planning                   = " +
         std::string(planning_mode_name(config.planning)) +
         (config.planning == PlanningMode::kAuto
              ? " (resolves to " +
                    std::string(planning_mode_name(
                        resolve_planning(PlanningMode::kAuto))) +
                    ")"
              : "") +
         "\n";
  out += "partitions                 = " + std::to_string(config.partitions) +
         (config.partitions == 0
              ? " (resolves to " +
                    std::to_string(resolve_partitions(0)) + ")"
              : "") +
         "\n";
  out += "partition_steal            = " +
         std::string(config.partition_steal ? "true" : "false") + "\n";
  out += "numa_local_b               = " +
         std::string(config.numa_local_b ? "true" : "false") + "\n";
  out += "estimator_samples          = " +
         std::to_string(config.estimator_samples) + "\n";
  out += "estimator_safety_margin    = " +
         std::to_string(config.estimator_safety_margin) + "\n";
  out += "validate_inputs            = " +
         std::string(config.validate_inputs ? "true" : "false") + "\n";
  out += "mask                       = " +
         std::string(config.mask != nullptr ? "set" : "none") + "\n";
  out += describe(config.faults) + "\n";
  return out;
}

std::optional<PlanningMode> parse_planning_mode(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "auto") return PlanningMode::kAuto;
  if (lower == "exact") return PlanningMode::kExact;
  if (lower == "estimated") return PlanningMode::kEstimated;
  return std::nullopt;
}

const char* planning_mode_name(PlanningMode mode) {
  switch (mode) {
    case PlanningMode::kAuto: return "auto";
    case PlanningMode::kExact: return "exact";
    case PlanningMode::kEstimated: return "estimated";
  }
  return "?";
}

PlanningMode resolve_planning(PlanningMode choice) {
  if (choice != PlanningMode::kAuto) return choice;
  if (const char* env = std::getenv("SPECK_PLANNING")) {
    const std::optional<PlanningMode> parsed = parse_planning_mode(env);
    if (parsed.has_value() && *parsed != PlanningMode::kAuto) return *parsed;
    if (!parsed.has_value()) {
      // Invalid request from the environment: warn once and fall back to the
      // exact default rather than aborting the process.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "speck: ignoring SPECK_PLANNING='%s' (expected "
                     "auto|exact|estimated; using 'exact')\n",
                     env);
      }
    }
  }
  return PlanningMode::kExact;
}

int resolve_partitions(int partitions) {
  if (partitions >= 1) return partitions;
  if (const char* env = std::getenv("SPECK_PARTITIONS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 256) {
      return static_cast<int>(value);
    }
    // Invalid request from the environment: warn once and fall back to the
    // flat executor rather than aborting the process.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "speck: ignoring SPECK_PARTITIONS='%s' (expected an "
                   "integer in [1, 256]; using 1)\n",
                   env);
    }
  }
  return 1;
}

SpeckThresholds reduced_scale_thresholds() {
  SpeckThresholds t;
  t.symbolic = {39.2, 500};
  t.symbolic_large = {6.0, 2000};
  t.numeric = {3.0, 500};
  t.numeric_large = {1.3, 1238};
  return t;
}

}  // namespace speck
