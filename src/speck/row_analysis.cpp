#include "speck/row_analysis.h"

#include <algorithm>

#include "common/bit_utils.h"

namespace speck {

namespace {

/// Rows per parallel chunk. Fixed (never derived from the thread count) so
/// chunk boundaries — and with them every per-row result — are identical at
/// any parallelism level.
constexpr std::size_t kRowChunk = 256;

}  // namespace

RowAnalysis analyze_rows(const Csr& a, const Csr& b, sim::Launch& launch,
                         ThreadPool* pool, const FaultInjector* faults) {
  RowAnalysis out;
  out.rows = a.rows();
  out.products.assign(static_cast<std::size_t>(a.rows()), 0);
  out.longest_b_row.assign(static_cast<std::size_t>(a.rows()), 0);
  out.col_min.assign(static_cast<std::size_t>(a.rows()), 0);
  out.col_max.assign(static_cast<std::size_t>(a.rows()), 0);

  const auto b_offsets = b.row_offsets();
  const auto b_cols = b.col_indices();

  // Device execution: parallel over the NZ of A, 1024 threads per block.
  const int block_threads = launch.device().max_threads_per_block;
  const auto nnz_a = static_cast<std::size_t>(a.nnz());
  const std::size_t num_blocks =
      std::max<std::size_t>(1, ceil_div(nnz_a, static_cast<std::size_t>(block_threads)));

  // Each row writes only its own preallocated slots, so the rows can be
  // scanned in parallel chunks; the totals are reduced from the per-row
  // results afterwards (integer sum/max — order-independent).
  pool_or_global(pool).parallel_for(
      static_cast<std::size_t>(a.rows()), kRowChunk,
      [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t ri = begin; ri < end; ++ri) {
          const auto r = static_cast<index_t>(ri);
          offset_t prod_r = 0;
          index_t longest = 0;
          index_t cmin = b.cols();
          index_t cmax = -1;
          for (const index_t col_a : a.row_cols(r)) {
            const offset_t id0 = b_offsets[static_cast<std::size_t>(col_a)];
            const offset_t idn = b_offsets[static_cast<std::size_t>(col_a) + 1];
            const auto len = static_cast<index_t>(idn - id0);
            if (len > 0) {
              cmin = std::min(cmin, b_cols[static_cast<std::size_t>(id0)]);
              cmax = std::max(cmax, b_cols[static_cast<std::size_t>(idn - 1)]);
            }
            prod_r += len;
            longest = std::max(longest, len);
          }
          // Fault injection perturbs the *estimate* only: planning consumes
          // it, but symbolic/numeric correctness never depends on it.
          out.products[ri] =
              faults != nullptr ? faults->scale_estimate(r, prod_r) : prod_r;
          out.longest_b_row[ri] = longest;
          out.col_min[ri] = cmin == b.cols() ? 0 : cmin;
          out.col_max[ri] = cmax < 0 ? 0 : cmax;
        }
      });
  for (const offset_t prod_r : out.products) {
    out.total_products += prod_r;
    out.max_products = std::max(out.max_products, prod_r);
  }
  out.avg_products =
      a.rows() > 0 ? static_cast<double>(out.total_products) / a.rows() : 0.0;

  // Cost: each NZ of A reads its column index (coalesced), the B row offset
  // pair and the first/last column of the referenced row. Column indices
  // within a row of A are sorted, so the offset/column lookups land near the
  // previous ones and mostly hit in L2 — only a fraction pays a full
  // transaction (the paper reports <10% total analysis overhead).
  std::size_t remaining = nnz_a;
  for (std::size_t blk = 0; blk < num_blocks; ++blk) {
    const std::size_t in_block =
        std::min(remaining, static_cast<std::size_t>(block_threads));
    remaining -= in_block;
    auto cost = launch.make_block(block_threads, 4 * 1024);
    cost.global_coalesced(in_block);           // col indices of A
    cost.global_coalesced(2 * in_block);       // B row offsets (near-sequential)
    cost.global_scattered(in_block / 2);       // first/last columns (L2 misses)
    cost.smem_atomic(4.0 * static_cast<double>(in_block));  // per-row reductions
    cost.issued(static_cast<double>(block_threads), 6.0);
    cost.global_coalesced(4 * in_block / 16);  // per-row outputs (amortized)
    launch.add(cost);
  }
  return out;
}

}  // namespace speck
