#include "speck/local_lb.h"

#include <algorithm>

#include "common/bit_utils.h"
#include "common/check.h"

namespace speck {

LocalLbDecision choose_group_size(int block_threads, const BlockRowStats& stats,
                                  const SpeckFeatures& features) {
  SPECK_REQUIRE(block_threads >= 1 && is_pow2(static_cast<std::uint64_t>(block_threads)),
                "block threads must be a positive power of two");
  LocalLbDecision d;
  if (!features.dynamic_group_size) {
    // nsparse-style fixed assignment (Fig. 13 baseline).
    d.group_size = std::min(features.fixed_group_size, block_threads);
    d.groups = block_threads / d.group_size;
    return d;
  }
  if (stats.nnz_a <= 0 || stats.products <= 0) {
    d.group_size = block_threads;
    d.groups = 1;
    return d;
  }

  const double avg_len =
      static_cast<double>(stats.products) / static_cast<double>(stats.nnz_a);
  double g = std::max(1.0, avg_len);

  // Rebalance: compare the iterations the longest row needs against the
  // number of rows each group processes (paper §4.3).
  const auto iter_max = [&](double group) {
    return static_cast<double>(stats.max_b_row_len) / group;
  };
  const auto n_rows = [&](double group) {
    const double k = static_cast<double>(block_threads) / group;
    return static_cast<double>(stats.nnz_a) / std::max(k, 1.0);
  };

  const double im = iter_max(g);
  const double nr = n_rows(g);
  if (im > 2.0 * nr && nr > 0.0) {
    g = g * im / (2.0 * nr);
  } else if (nr > 2.0 * im && im > 0.0) {
    g = g * im / nr;
  }

  // Ensure there are not more groups than NZ of A to work on.
  const double min_g =
      static_cast<double>(block_threads) / static_cast<double>(stats.nnz_a);
  g = std::max(g, min_g);

  d.group_size = static_cast<int>(
      std::clamp<std::uint64_t>(round_pow2(static_cast<std::uint64_t>(std::max(1.0, g))),
                                1, static_cast<std::uint64_t>(block_threads)));
  d.groups = block_threads / d.group_size;
  return d;
}

}  // namespace speck
