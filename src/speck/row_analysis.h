// Lightweight O(NNZ_A) row analysis (paper §4.1, Algorithm 1).
#pragma once

#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "matrix/csr.h"
#include "sim/launch.h"

namespace speck {

/// Per-row and aggregate features extracted by the analysis kernel.
struct RowAnalysis {
  /// Per row of A: total intermediate products (upper bound for C row nnz).
  std::vector<offset_t> products;
  /// Per row of A: length of the longest referenced row of B.
  std::vector<index_t> longest_b_row;
  /// Per row of A: min / max column index over all referenced rows of B
  /// (and thus the column range of the C row). Undefined for empty rows.
  std::vector<index_t> col_min;
  std::vector<index_t> col_max;

  offset_t total_products = 0;
  offset_t max_products = 0;  ///< maximum over the rows of A
  double avg_products = 0.0;  ///< total / rows

  index_t rows = 0;

  /// Allocated host-memory footprint of the per-row arrays (capacity-based,
  /// for SpeckPlan byte accounting).
  std::size_t byte_size() const {
    return products.capacity() * sizeof(offset_t) +
           (longest_b_row.capacity() + col_min.capacity() +
            col_max.capacity()) *
               sizeof(index_t);
  }
};

/// Runs the analysis, charging its simulated cost to `launch`. The per-row
/// scan is parallelized over `pool` (the global pool when null); results
/// are bit-identical for every thread count. When `faults` is set, the
/// per-row product estimates are perturbed (deterministically per row) to
/// stress the planning stages; only estimates change, never exact counts.
RowAnalysis analyze_rows(const Csr& a, const Csr& b, sim::Launch& launch,
                         ThreadPool* pool = nullptr,
                         const FaultInjector* faults = nullptr);

}  // namespace speck
