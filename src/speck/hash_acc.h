// Scratchpad hash accumulators with global-memory spill (paper §4.3
// "Sparse Rows of C"). Wraps the linear-probing DeviceHashMap: when the
// local map fills — only possible for rows the binning could not bound,
// i.e. largest-configuration rows — all entries move to a global-memory
// map and accumulation continues there. Both flavours count the operations
// the cost model charges (probes, moved entries, global inserts).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "common/fault_injection.h"
#include "speck/hash_map.h"

namespace speck {

/// Symbolic accumulator: tracks distinct compound keys only.
/// The optional FaultInjector can force the spill early (tests drive the
/// global-fallback path on demand); contents stay exact either way.
class SymbolicHashAccumulator {
 public:
  explicit SymbolicHashAccumulator(std::size_t capacity,
                                   const FaultInjector* faults = nullptr);

  void insert(key64_t key);

  /// NNZ per local row (indexed by the compound key's local row field).
  std::vector<index_t> row_counts(int rows, bool wide_keys) const;

  bool spilled() const { return in_global_; }
  std::size_t probes() const { return local_.probes(); }
  std::size_t moved_entries() const { return moved_entries_; }
  std::size_t global_inserts() const { return global_inserts_; }
  std::size_t unique_keys() const { return in_global_ ? global_.size() : local_.size(); }

 private:
  void spill();
  bool forced_overflow() const {
    return faults_ != nullptr && faults_->force_hash_overflow(local_.size());
  }

  DeviceHashMap local_;
  const FaultInjector* faults_ = nullptr;
  bool in_global_ = false;
  std::unordered_set<key64_t> global_;
  std::size_t moved_entries_ = 0;
  std::size_t global_inserts_ = 0;
};

/// Numeric accumulator: sums values per compound key.
class NumericHashAccumulator {
 public:
  explicit NumericHashAccumulator(std::size_t capacity,
                                  const FaultInjector* faults = nullptr);

  void accumulate(key64_t key, value_t value);

  /// All (key, value) pairs, unsorted.
  std::vector<DeviceHashMap::Entry> extract() const;

  bool spilled() const { return in_global_; }
  std::size_t probes() const { return local_.probes(); }
  std::size_t moved_entries() const { return moved_entries_; }
  std::size_t global_inserts() const { return global_inserts_; }

 private:
  void spill();
  bool forced_overflow() const {
    return faults_ != nullptr && faults_->force_hash_overflow(local_.size());
  }

  DeviceHashMap local_;
  const FaultInjector* faults_ = nullptr;
  bool in_global_ = false;
  std::unordered_map<key64_t, value_t> global_;
  std::size_t moved_entries_ = 0;
  std::size_t global_inserts_ = 0;
};

}  // namespace speck
