// Scratchpad hash accumulators with global-memory spill (paper §4.3
// "Sparse Rows of C"). Wraps the linear-probing DeviceHashMap: when the
// local map fills — only possible for rows the binning could not bound,
// i.e. largest-configuration rows — all entries move to a global-memory
// map (a flat open-addressing FlatSpillMap) and accumulation continues
// there. Both flavours count the operations the cost model charges (probes,
// moved entries, global inserts).
//
// Accumulators are designed for reuse: a per-worker KernelWorkspace holds
// one of each and calls `begin_block()` before every block, which re-targets
// the scratchpad capacity and clears both maps in O(1) (epoch tags) while
// keeping their grown storage. After warm-up no block allocates.
#pragma once

#include "common/fault_injection.h"
#include "speck/flat_map.h"
#include "speck/hash_map.h"

namespace speck {

/// Symbolic accumulator: tracks distinct compound keys only.
/// The optional FaultInjector can force the spill early (tests drive the
/// global-fallback path on demand); contents stay exact either way.
class SymbolicHashAccumulator {
 public:
  /// Reusable accumulator; `begin_block()` must run before inserts.
  SymbolicHashAccumulator() = default;
  explicit SymbolicHashAccumulator(std::size_t capacity,
                                   const FaultInjector* faults = nullptr,
                                   SimdBackend simd = SimdBackend::kScalar) {
    begin_block(capacity, faults, simd);
  }

  /// Prepares for a new block: scratchpad capacity, fault hook, SIMD
  /// backend, all contents and counters cleared. O(1) after warm-up. The
  /// backend only changes probe speed; contents and counters are identical.
  void begin_block(std::size_t capacity, const FaultInjector* faults,
                   SimdBackend simd = SimdBackend::kScalar);

  void insert(key64_t key);

  /// NNZ per local row (indexed by the compound key's local row field),
  /// counted by iterating both maps in place. `counts` is assigned
  /// `rows` zeros first; its capacity is reused across calls.
  void row_counts_into(int rows, bool wide_keys,
                       std::vector<index_t>& counts) const;

  /// Convenience wrapper allocating the counts vector.
  std::vector<index_t> row_counts(int rows, bool wide_keys) const;

  bool spilled() const { return in_global_; }
  std::size_t probes() const { return local_.probes(); }
  std::size_t moved_entries() const { return moved_entries_; }
  std::size_t global_inserts() const { return global_inserts_; }
  std::size_t unique_keys() const { return in_global_ ? global_.size() : local_.size(); }

 private:
  void spill();
  bool forced_overflow() const {
    return faults_ != nullptr && faults_->force_hash_overflow(local_.size());
  }

  DeviceHashMap local_;
  const FaultInjector* faults_ = nullptr;
  bool in_global_ = false;
  FlatSpillMap global_;
  std::size_t moved_entries_ = 0;
  std::size_t global_inserts_ = 0;
};

/// Numeric accumulator: sums values per compound key.
class NumericHashAccumulator {
 public:
  /// Reusable accumulator; `begin_block()` must run before accumulates.
  NumericHashAccumulator() = default;
  explicit NumericHashAccumulator(std::size_t capacity,
                                  const FaultInjector* faults = nullptr,
                                  SimdBackend simd = SimdBackend::kScalar) {
    begin_block(capacity, faults, simd);
  }

  /// Prepares for a new block: scratchpad capacity, fault hook, SIMD
  /// backend, all contents and counters cleared. O(1) after warm-up. The
  /// backend only changes probe speed; contents and counters are identical.
  void begin_block(std::size_t capacity, const FaultInjector* faults,
                   SimdBackend simd = SimdBackend::kScalar);

  void accumulate(key64_t key, value_t value);

  /// All (key, value) pairs, unsorted (local map in slot order, then the
  /// spill map in slot order), appended into the caller's buffer after a
  /// clear(). The buffer's capacity is reused across calls.
  void extract_into(std::vector<DeviceHashMap::Entry>& out) const;

  /// Convenience wrapper allocating the entry vector.
  std::vector<DeviceHashMap::Entry> extract() const;

  std::size_t entry_count() const { return local_.size() + global_.size(); }

  bool spilled() const { return in_global_; }
  std::size_t probes() const { return local_.probes(); }
  std::size_t moved_entries() const { return moved_entries_; }
  std::size_t global_inserts() const { return global_inserts_; }

 private:
  void spill();
  bool forced_overflow() const {
    return faults_ != nullptr && faults_->force_hash_overflow(local_.size());
  }

  DeviceHashMap local_;
  const FaultInjector* faults_ = nullptr;
  bool in_global_ = false;
  FlatSpillMap global_;
  std::size_t moved_entries_ = 0;
  std::size_t global_inserts_ = 0;
};

/// Masked accumulator (paper-style scratchpad map in GraphBLAS masked mode):
/// the mask columns are pre-seeded as the *only* admissible keys, then
/// products are streamed with `accumulate()` — a non-mask column misses its
/// probe and is dropped without claiming a slot, so the map never holds more
/// than the mask row's nnz. Extraction probes the mask columns back in
/// order with `lookup_touched()`, which distinguishes "mask column some
/// product landed on" (emit, even a computed zero) from "mask column no
/// product touched" (drop).
///
/// Spill can only trigger while seeding (capacity pressure — or the
/// fault-injection overflow hook — is decided by the seed count; streaming
/// and lookups never insert): seeded keys move to the global FlatSpillMap
/// and all later seeds, accumulates and lookups go there.
class MaskedNumericAccumulator {
 public:
  /// Reusable accumulator; `begin_block()` must run before seeds.
  MaskedNumericAccumulator() = default;

  /// Prepares for a new block: scratchpad capacity, fault hook, SIMD
  /// backend, all contents and counters cleared. O(1) after warm-up. The
  /// backend only changes probe speed; contents and counters are identical.
  void begin_block(std::size_t capacity, const FaultInjector* faults,
                   SimdBackend simd = SimdBackend::kScalar);

  /// Admits `key` (a mask column) as an accumulation target.
  void seed(key64_t key);

  /// Adds `value` into `key`'s slot iff the key was seeded; marks it
  /// touched. Non-mask keys are dropped (their probe is still counted).
  void accumulate(key64_t key, value_t value);

  /// True (with the accumulated sum) iff `key` was seeded and touched.
  bool lookup_touched(key64_t key, value_t* value);

  bool spilled() const { return in_global_; }
  std::size_t probes() const { return local_.probes(); }
  std::size_t moved_entries() const { return moved_entries_; }
  std::size_t global_inserts() const { return global_inserts_; }

 private:
  void spill();
  bool forced_overflow() const {
    return faults_ != nullptr && faults_->force_hash_overflow(local_.size());
  }

  DeviceHashMap local_;
  const FaultInjector* faults_ = nullptr;
  bool in_global_ = false;
  FlatSpillMap global_;
  std::size_t moved_entries_ = 0;
  std::size_t global_inserts_ = 0;
};

}  // namespace speck
