// Sharded LRU plan cache: the multi-slot successor of the single-slot
// transparent cache, shared by many client threads.
//
// Plans are keyed by their *full* structural fingerprint (dims, nnz,
// planning-config hash and both pattern hashes), so two structures that
// collide on the O(1) quick fields — same shapes, same nnz, same config —
// still occupy distinct entries and can never serve each other's pattern.
// Entries are immutable `shared_ptr<const SpeckPlan>`: a hit hands the
// caller a reference that stays valid through its replay even if the entry
// is concurrently evicted, which is what makes the replay path lock-free
// (the only lock held is the shard mutex, for the duration of a map lookup
// and an O(1) intrusive-LRU splice — never across a multiply).
//
// Sharding follows the partition-local-memory lesson of thread-scalable
// SpGEMM (Deveci et al.): the key hash selects one of `shards` independent
// sub-caches, each with its own mutex, hash index and intrusive LRU list,
// so concurrent clients touching different patterns never contend. Byte
// accounting is global (one atomic) against `limit_bytes`; an insert that
// pushes the total over the limit evicts from its *own* shard's LRU tail
// first and, if the shard is drained and the total still exceeds the limit,
// the insert is rejected (counted, never fatal — the caller keeps its plan,
// it just is not retained).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "speck/plan.h"

namespace speck {

/// 64-bit key hash of a full fingerprint. Requires the pattern hashes to be
/// computed (plan_fingerprint with `with_pattern_hashes == true`); hashing a
/// quick-only fingerprint would alias every same-shape structure.
std::uint64_t plan_key_hash(const PlanFingerprint& fp);

/// Point-in-time counter snapshot (monotonic except bytes/entries).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Inserts dropped because the plan could not fit the byte budget even
  /// after draining its shard (or was incomplete).
  std::uint64_t rejected_inserts = 0;
  std::size_t bytes = 0;
  std::size_t entries = 0;
};

class PlanCache {
 public:
  /// `shards` >= 1 independent sub-caches; `limit_bytes` is the global byte
  /// budget across all of them (SpeckPlan::byte_size accounting).
  PlanCache(int shards, std::size_t limit_bytes);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached plan whose fingerprint full-matches `fp` (moved to the head
  /// of its shard's LRU), or null. Thread-safe.
  std::shared_ptr<const SpeckPlan> find(const PlanFingerprint& fp);

  /// Caches `plan` under its own fingerprint, evicting least-recently-used
  /// entries of the same shard while the global byte total exceeds the
  /// limit. Returns the plan that ended up (or already was) cached for this
  /// fingerprint — on an insert race the first writer wins and every caller
  /// converges on one shared instance; on rejection (incomplete plan, or a
  /// plan that cannot fit the budget) the input plan is returned unscathed
  /// so the caller can still replay it. Thread-safe.
  std::shared_ptr<const SpeckPlan> insert(std::shared_ptr<const SpeckPlan> plan);

  /// Drops every entry (stats counters are retained).
  void clear();

  /// Evicts up to `max_entries` least-recently-used entries (walking the
  /// shards in order, draining each shard's LRU tail), counting them as
  /// evictions. Returns the number actually evicted. Thread-safe; the
  /// chaos eviction-storm fault uses it to force replan churn.
  std::size_t evict(std::size_t max_entries);

  PlanCacheStats stats() const;
  std::size_t bytes() const { return total_bytes_.load(std::memory_order_relaxed); }
  std::size_t entries() const;
  int shards() const { return static_cast<int>(shards_.size()); }
  std::size_t limit_bytes() const { return limit_bytes_; }

 private:
  struct Entry {
    PlanFingerprint key;
    std::shared_ptr<const SpeckPlan> plan;
    std::size_t bytes = 0;
    /// Intrusive LRU links within the owning shard (head = most recent).
    Entry* lru_prev = nullptr;
    Entry* lru_next = nullptr;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Key-hash index; full-fingerprint equality disambiguates the (already
    /// astronomically unlikely) 64-bit hash collisions.
    std::unordered_multimap<std::uint64_t, std::unique_ptr<Entry>> index;
    Entry* lru_head = nullptr;
    Entry* lru_tail = nullptr;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected_inserts = 0;
  };

  Shard& shard_for(std::uint64_t key_hash) {
    return *shards_[static_cast<std::size_t>(key_hash % shards_.size())];
  }

  // LRU helpers; the caller holds the shard mutex.
  static void lru_unlink(Shard& shard, Entry* entry);
  static void lru_push_front(Shard& shard, Entry* entry);
  /// Erases the shard's LRU tail entry; the caller holds the shard mutex.
  void evict_tail(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t limit_bytes_;
  std::atomic<std::size_t> total_bytes_{0};
};

}  // namespace speck
