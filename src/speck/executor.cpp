#include "speck/executor.h"

namespace speck {
namespace {

void check_structure(const SpeckPlan& plan, const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.rows() == plan.a_rows && a.cols() == plan.a_cols &&
                    b.cols() == plan.b_cols && a.nnz() == plan.a_nnz &&
                    b.nnz() == plan.b_nnz,
                "matrix structure does not match the inspected plan");
}

}  // namespace

SpeckPlan SpeckExecutor::inspect(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpeckPlan plan;
  plan.a_rows = a.rows();
  plan.a_cols = a.cols();
  plan.b_cols = b.cols();
  plan.a_nnz = a.nnz();
  plan.b_nnz = b.nnz();
  plan.wide_keys = b.cols() > kMaxColumns32Bit;

  KernelContext ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.cfg = &speck_.config();
  ctx.configs = &speck_.configs();
  ctx.device = &speck_.device();
  ctx.model = &speck_.cost_model();
  ctx.wide_keys = plan.wide_keys;
  ctx.pool = speck_.host_pool();
  ctx.workspaces = &speck_.workspaces();

  // Analysis.
  sim::Launch analysis_launch("row_analysis", speck_.device(), speck_.cost_model());
  plan.analysis = analyze_rows(a, b, analysis_launch, ctx.pool);
  ctx.analysis = &plan.analysis;
  plan.inspect_seconds += analysis_launch.finish().seconds;

  // Symbolic load balancing + symbolic pass.
  sim::Launch symbolic_lb("symbolic_lb", speck_.device(), speck_.cost_model());
  plan.symbolic_plan =
      plan_global_lb({std::span<const offset_t>(plan.analysis.products), true},
                     speck_.configs(), speck_.config(), symbolic_lb);
  if (plan.symbolic_plan.used_load_balancer) {
    plan.inspect_seconds += symbolic_lb.finish().seconds;
  }
  SymbolicOutcome symbolic = run_symbolic(ctx, plan.symbolic_plan);
  plan.inspect_seconds += symbolic.stats.seconds;
  plan.row_nnz = std::move(symbolic.row_nnz);

  // Numeric load balancing (exact sizes known).
  std::vector<offset_t> numeric_entries(plan.row_nnz.size());
  for (std::size_t r = 0; r < plan.row_nnz.size(); ++r) {
    numeric_entries[r] = static_cast<offset_t>(
        static_cast<double>(plan.row_nnz[r]) / speck_.config().max_numeric_fill + 1.0);
  }
  sim::Launch numeric_lb("numeric_lb", speck_.device(), speck_.cost_model());
  plan.numeric_plan =
      plan_global_lb({std::span<const offset_t>(numeric_entries), false},
                     speck_.configs(), speck_.config(), numeric_lb);
  if (plan.numeric_plan.used_load_balancer) {
    plan.inspect_seconds += numeric_lb.finish().seconds;
  }
  return plan;
}

SpGemmResult SpeckExecutor::execute(const SpeckPlan& plan, const Csr& a,
                                    const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  check_structure(plan, a, b);

  KernelContext ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.analysis = &plan.analysis;
  ctx.cfg = &speck_.config();
  ctx.configs = &speck_.configs();
  ctx.device = &speck_.device();
  ctx.model = &speck_.cost_model();
  ctx.wide_keys = plan.wide_keys;
  ctx.pool = speck_.host_pool();
  ctx.workspaces = &speck_.workspaces();

  SpGemmResult result;
  NumericOutcome numeric = run_numeric(ctx, plan.numeric_plan, plan.row_nnz);
  result.timeline.add(sim::Stage::kNumeric, numeric.stats.seconds);
  result.timeline.add(sim::Stage::kSorting, numeric.sorting_seconds);
  result.c = std::move(numeric.c);
  result.seconds = result.timeline.total_seconds();
  result.peak_memory_bytes =
      a.byte_size() + b.byte_size() + result.c.byte_size();
  return result;
}

SymbolicEstimate symbolic_estimate(Speck& speck, const Csr& a, const Csr& b) {
  SpeckExecutor executor(speck.device(), speck.cost_model(), speck.config());
  SpeckPlan plan = executor.inspect(a, b);
  SymbolicEstimate estimate;
  estimate.products = plan.analysis.total_products;
  estimate.seconds = plan.inspect_seconds;
  for (const index_t nnz : plan.row_nnz) estimate.c_nnz += nnz;
  estimate.row_nnz = std::move(plan.row_nnz);
  return estimate;
}

}  // namespace speck
