#include "speck/executor.h"

namespace speck {

SpeckPlan SpeckExecutor::inspect(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  return speck_.plan(a, b);
}

SpGemmResult SpeckExecutor::execute(const SpeckPlan& plan, const Csr& a,
                                    const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const PlanFingerprint now =
      plan_fingerprint(a, b, speck_.config(), /*with_pattern_hashes=*/false);
  SPECK_REQUIRE(plan.complete && now.matches_quick(plan.fingerprint),
                "matrix structure does not match the inspected plan");
  return speck_.multiply_with_plan(plan, a, b);
}

SymbolicEstimate symbolic_estimate(Speck& speck, const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");

  KernelContext ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.cfg = &speck.config();
  ctx.configs = &speck.configs();
  ctx.device = &speck.device();
  ctx.model = &speck.cost_model();
  ctx.wide_keys = b.cols() > kMaxColumns32Bit;
  ctx.pool = speck.host_pool();
  ctx.workspaces = &speck.workspaces();
  ctx.simd = simd::resolve_backend(speck.config().simd_backend);
  // Same two-level execution as multiply(): bit-identical estimate at any
  // partition count (no diag sink — pass-local team workspaces suffice).
  ctx.partitions = resolve_partitions(speck.config().partitions);
  ctx.partition_steal = speck.config().partition_steal;

  SymbolicEstimate estimate;

  // Analysis.
  sim::Launch analysis_launch("row_analysis", speck.device(), speck.cost_model());
  const RowAnalysis analysis = analyze_rows(a, b, analysis_launch, ctx.pool);
  ctx.analysis = &analysis;
  estimate.products = analysis.total_products;
  estimate.seconds += analysis_launch.finish().seconds;

  // Symbolic load balancing + symbolic pass.
  sim::Launch symbolic_lb("symbolic_lb", speck.device(), speck.cost_model());
  const BinPlan symbolic_plan =
      plan_global_lb({std::span<const offset_t>(analysis.products), true},
                     speck.configs(), speck.config(), symbolic_lb);
  if (symbolic_plan.used_load_balancer) {
    estimate.seconds += symbolic_lb.finish().seconds;
  }
  SymbolicOutcome symbolic = run_symbolic(ctx, symbolic_plan);
  estimate.seconds += symbolic.stats.seconds;

  // Numeric load balancing (exact sizes known) — part of what the numeric
  // pass would consume, and of what the old inspect() charged.
  std::vector<offset_t> numeric_entries(symbolic.row_nnz.size());
  for (std::size_t r = 0; r < symbolic.row_nnz.size(); ++r) {
    numeric_entries[r] = static_cast<offset_t>(
        static_cast<double>(symbolic.row_nnz[r]) / speck.config().max_numeric_fill +
        1.0);
  }
  sim::Launch numeric_lb("numeric_lb", speck.device(), speck.cost_model());
  const BinPlan numeric_plan =
      plan_global_lb({std::span<const offset_t>(numeric_entries), false},
                     speck.configs(), speck.config(), numeric_lb);
  if (numeric_plan.used_load_balancer) {
    estimate.seconds += numeric_lb.finish().seconds;
  }

  for (const index_t nnz : symbolic.row_nnz) estimate.c_nnz += nnz;
  estimate.row_nnz = std::move(symbolic.row_nnz);
  return estimate;
}

}  // namespace speck
