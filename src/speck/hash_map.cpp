#include "speck/hash_map.h"

namespace speck {

// One-slot-at-a-time reference probe: the exact linear scan the paper's
// scratchpad map performs. Every visited slot is one probe; the first empty
// slot or key match stops the scan; a full cycle without either overflows.
DeviceHashMap::Probe DeviceHashMap::probe_scalar(key64_t key, std::size_t start,
                                                 std::uint8_t tag) {
  std::size_t slot = start;
  for (std::size_t step = 0; step < capacity_; ++step) {
    ++probes_;
    materialize_group(slot / simd::kGroupWidth);
    const std::uint8_t c = ctrl_[slot];
    if (c == kCtrlEmpty) return Probe{slot, false};
    if (c == tag && keys_[slot] == key) return Probe{slot, true};
    slot = slot + 1 == capacity_ ? 0 : slot + 1;
  }
  return Probe{kNoSlot, false};
}

// Group-probing variant: scans one 16-byte control group per iteration and
// derives the same stop slot — and the same probe count (slots a scalar scan
// would visit) — from the match/empty masks. The first iteration masks off
// lanes before the start slot; sentinel bytes past the logical capacity
// match neither the tag nor kEmpty, so partial tail groups need no special
// casing. `visited` counts in-range slots scanned by previous iterations;
// when it reaches the capacity without a stop, the map has cycled and the
// probe overflows with exactly `capacity_` probes, like the scalar scan.
DeviceHashMap::Probe DeviceHashMap::probe_groups(key64_t key, std::size_t start,
                                                 std::uint8_t tag) {
  // Most probes stop on their home slot; one byte compare settles those
  // without paying for a whole-group scan, and counts the same single probe
  // the scalar scan would.
  materialize_group(start / simd::kGroupWidth);
  const std::uint8_t c0 = ctrl_[start];
  if (c0 == kCtrlEmpty) {
    ++probes_;
    return Probe{start, false};
  }
  if (c0 == tag && keys_[start] == key) {
    ++probes_;
    return Probe{start, true};
  }
  std::size_t visited = 0;
  std::size_t slot = start;
  while (visited < capacity_) {
    const std::size_t g = slot / simd::kGroupWidth;
    const std::size_t base = g * simd::kGroupWidth;
    const auto off = static_cast<unsigned>(slot - base);
    materialize_group(g);
    const simd::GroupMasks m =
        simd::group_masks16(ctrl_.data() + base, tag, kCtrlEmpty, backend_);
    // Walk candidate stop lanes in ascending order: the first empty lane
    // ends the probe exactly like the scalar scan would, so tag matches
    // past it are never examined.
    std::uint32_t stops = (m.tag_mask | m.empty_mask) & (0xFFFFu << off);
    while (stops != 0) {
      const unsigned p = simd::lowest_bit(stops);
      if ((m.empty_mask >> p) & 1u) {
        probes_ += visited + (p - off) + 1;
        return Probe{base + p, false};
      }
      if (keys_[base + p] == key) {
        probes_ += visited + (p - off) + 1;
        return Probe{base + p, true};
      }
      stops &= stops - 1;
    }
    const std::size_t in_range =
        std::min<std::size_t>(simd::kGroupWidth, capacity_ - base);
    visited += in_range - off;
    slot = base + simd::kGroupWidth >= capacity_ ? 0 : base + simd::kGroupWidth;
  }
  probes_ += capacity_;
  return Probe{kNoSlot, false};
}

bool DeviceHashMap::insert_key(key64_t key) {
  const std::uint64_t h = key * kHashPrime;
  const Probe p = probe(key, hash_slot(h), hash_tag(h));
  if (p.index == kNoSlot) {
    overflowed_ = true;
    return false;
  }
  if (p.found) return false;
  ctrl_[p.index] = hash_tag(h);
  keys_[p.index] = key;
  vals_[p.index] = 0.0;
  ++size_;
  return true;
}

bool DeviceHashMap::accumulate(key64_t key, value_t value) {
  const std::uint64_t h = key * kHashPrime;
  const Probe p = probe(key, hash_slot(h), hash_tag(h));
  if (p.index == kNoSlot) {
    overflowed_ = true;
    return false;
  }
  if (p.found) {
    vals_[p.index] += value;
    return true;
  }
  ctrl_[p.index] = hash_tag(h);
  keys_[p.index] = key;
  vals_[p.index] = value;
  ++size_;
  return true;
}

bool DeviceHashMap::seed_key(key64_t key) {
  const std::uint64_t h = key * kHashPrime;
  const Probe p = probe(key, hash_slot(h), hash_tag(h));
  if (p.index == kNoSlot) {
    overflowed_ = true;
    return false;
  }
  if (p.found) return false;
  ctrl_[p.index] = hash_tag(h);
  keys_[p.index] = key;
  vals_[p.index] = 0.0;
  touched_[p.index] = 0;
  ++size_;
  return true;
}

bool DeviceHashMap::accumulate_if_present(key64_t key, value_t value) {
  const std::uint64_t h = key * kHashPrime;
  const Probe p = probe(key, hash_slot(h), hash_tag(h));
  if (p.index == kNoSlot || !p.found) return false;
  vals_[p.index] += value;
  touched_[p.index] = 1;
  return true;
}

bool DeviceHashMap::lookup_touched(key64_t key, value_t* value) {
  const std::uint64_t h = key * kHashPrime;
  const Probe p = probe(key, hash_slot(h), hash_tag(h));
  if (p.index == kNoSlot || !p.found || touched_[p.index] == 0) return false;
  *value = vals_[p.index];
  return true;
}

std::vector<DeviceHashMap::Entry> DeviceHashMap::extract() const {
  std::vector<Entry> out;
  out.reserve(size_);
  extract_into(out);
  return out;
}

void DeviceHashMap::extract_into(std::vector<Entry>& out) const {
  for_each([&](key64_t key, value_t value) { out.push_back(Entry{key, value}); });
}

void DeviceHashMap::reset() {
  ++epoch_;
  size_ = 0;
  overflowed_ = false;
}

void DeviceHashMap::reconfigure(std::size_t capacity) {
  SPECK_REQUIRE(capacity > 0, "hash map capacity must be positive");
  groups_ = (capacity + simd::kGroupWidth - 1) / simd::kGroupWidth;
  if (groups_ * simd::kGroupWidth > ctrl_.size()) {
    ctrl_.resize(groups_ * simd::kGroupWidth);
    group_epoch_.resize(groups_, 0);
    keys_.resize(groups_ * simd::kGroupWidth);
    vals_.resize(groups_ * simd::kGroupWidth);
    touched_.resize(groups_ * simd::kGroupWidth);
  }
  capacity_ = capacity;
  ++epoch_;
  size_ = 0;
  probes_ = 0;
  overflowed_ = false;
}

}  // namespace speck
