#include "speck/hash_map.h"

namespace speck {

DeviceHashMap::DeviceHashMap(std::size_t capacity) : slots_(capacity) {
  SPECK_REQUIRE(capacity > 0, "hash map capacity must be positive");
}

bool DeviceHashMap::insert_key(key64_t key) {
  SPECK_ASSERT(key != kEmpty, "reserved empty key");
  std::size_t slot = hash(key);
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    ++probes_;
    Slot& s = slots_[slot];
    if (s.key == key) return false;
    if (s.key == kEmpty) {
      s.key = key;
      ++size_;
      return true;
    }
    slot = slot + 1 == slots_.size() ? 0 : slot + 1;
  }
  overflowed_ = true;
  return false;
}

bool DeviceHashMap::accumulate(key64_t key, value_t value) {
  SPECK_ASSERT(key != kEmpty, "reserved empty key");
  std::size_t slot = hash(key);
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    ++probes_;
    Slot& s = slots_[slot];
    if (s.key == key) {
      s.value += value;
      return true;
    }
    if (s.key == kEmpty) {
      s.key = key;
      s.value = value;
      ++size_;
      return true;
    }
    slot = slot + 1 == slots_.size() ? 0 : slot + 1;
  }
  overflowed_ = true;
  return false;
}

std::vector<DeviceHashMap::Entry> DeviceHashMap::extract() const {
  std::vector<Entry> out;
  out.reserve(size_);
  for (const Slot& s : slots_) {
    if (s.key != kEmpty) out.push_back(Entry{s.key, s.value});
  }
  return out;
}

void DeviceHashMap::reset() {
  for (Slot& s : slots_) s = Slot{};
  size_ = 0;
  overflowed_ = false;
}

}  // namespace speck
