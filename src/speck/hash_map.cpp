#include "speck/hash_map.h"

namespace speck {

DeviceHashMap::DeviceHashMap(std::size_t capacity) { reconfigure(capacity); }

bool DeviceHashMap::insert_key(key64_t key) {
  std::size_t slot = hash(key);
  for (std::size_t step = 0; step < capacity_; ++step) {
    ++probes_;
    Slot& s = slots_[slot];
    if (s.epoch != epoch_) {
      s.key = key;
      s.value = 0.0;
      s.epoch = epoch_;
      ++size_;
      return true;
    }
    if (s.key == key) return false;
    slot = slot + 1 == capacity_ ? 0 : slot + 1;
  }
  overflowed_ = true;
  return false;
}

bool DeviceHashMap::accumulate(key64_t key, value_t value) {
  std::size_t slot = hash(key);
  for (std::size_t step = 0; step < capacity_; ++step) {
    ++probes_;
    Slot& s = slots_[slot];
    if (s.epoch != epoch_) {
      s.key = key;
      s.value = value;
      s.epoch = epoch_;
      ++size_;
      return true;
    }
    if (s.key == key) {
      s.value += value;
      return true;
    }
    slot = slot + 1 == capacity_ ? 0 : slot + 1;
  }
  overflowed_ = true;
  return false;
}

std::vector<DeviceHashMap::Entry> DeviceHashMap::extract() const {
  std::vector<Entry> out;
  out.reserve(size_);
  extract_into(out);
  return out;
}

void DeviceHashMap::extract_into(std::vector<Entry>& out) const {
  for_each([&](key64_t key, value_t value) { out.push_back(Entry{key, value}); });
}

void DeviceHashMap::reset() {
  ++epoch_;
  size_ = 0;
  overflowed_ = false;
}

void DeviceHashMap::reconfigure(std::size_t capacity) {
  SPECK_REQUIRE(capacity > 0, "hash map capacity must be positive");
  if (capacity > slots_.size()) slots_.resize(capacity);
  capacity_ = capacity;
  ++epoch_;
  size_ = 0;
  probes_ = 0;
  overflowed_ = false;
}

}  // namespace speck
