#include "speck/dense_acc.h"

#include <algorithm>
#include <cstring>

#include "common/bit_utils.h"
#include "common/check.h"

namespace speck {

namespace {

/// Scalar extraction: compact the occupied cells [begin, cells) in order,
/// clearing each one so the scratch is ready for the next call.
inline void extract_window_scalar(DenseScratch& scratch, std::size_t begin,
                                  std::size_t cells, index_t window_start,
                                  bool numeric) {
  for (std::size_t s = begin; s < cells; ++s) {
    if (!scratch.occupied[s]) continue;
    scratch.out_cols.push_back(window_start + static_cast<index_t>(s));
    if (numeric) {
      scratch.out_vals.push_back(scratch.window_vals[s]);
      scratch.window_vals[s] = 0.0;
    }
    scratch.occupied[s] = 0;
  }
}

/// Vector extraction: scan the occupancy bytes 32 at a time, emitting set
/// lanes in ascending order (identical output to the scalar walk) and
/// zero-filling whole chunks at once. Chunks with no occupied cell are
/// skipped with a single mask test — the common case for sparse windows.
inline void extract_window_simd(DenseScratch& scratch, std::size_t cells,
                                index_t window_start, bool numeric,
                                SimdBackend simd) {
  std::uint8_t* occ = scratch.occupied.data();
  std::size_t s = 0;
  for (; s + simd::kChunkWidth <= cells; s += simd::kChunkWidth) {
    std::uint32_t mask = simd::nonzero_mask32(occ + s, simd);
    if (mask == 0) continue;
    do {
      const auto lane = static_cast<std::size_t>(simd::lowest_bit(mask));
      const std::size_t slot = s + lane;
      scratch.out_cols.push_back(window_start + static_cast<index_t>(slot));
      if (numeric) {
        scratch.out_vals.push_back(scratch.window_vals[slot]);
        scratch.window_vals[slot] = 0.0;
      }
      mask &= mask - 1;
    } while (mask != 0);
    std::memset(occ + s, 0, simd::kChunkWidth);
  }
  extract_window_scalar(scratch, s, cells, window_start, numeric);
}

}  // namespace

DenseRowView dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                  std::span<const value_t> a_vals, index_t col_min,
                                  index_t col_max, std::size_t window_columns,
                                  bool numeric, DenseScratch& scratch,
                                  SimdBackend simd) {
  SPECK_REQUIRE(window_columns > 0, "dense window must hold at least one column");
  SPECK_REQUIRE(!numeric || a_vals.size() == a_cols.size(),
                "numeric mode requires values for every A entry");
  DenseRowView result;
  scratch.out_cols.clear();
  scratch.out_vals.clear();
  if (a_cols.empty() || col_max < col_min) {
    result.passes = 0;
    return result;
  }

  const auto range = static_cast<std::size_t>(col_max - col_min) + 1;
  const auto window = static_cast<index_t>(window_columns);

  // Per referenced B row: cursor of the next unconsumed element. B rows are
  // sorted by column, so each pass consumes a prefix of the remainder.
  if (scratch.cursor.size() < a_cols.size()) scratch.cursor.resize(a_cols.size());
  for (std::size_t i = 0; i < a_cols.size(); ++i) {
    scratch.cursor[i] = b.row_offsets()[static_cast<std::size_t>(a_cols[i])];
  }

  // The window arrays grow monotonically and are returned all-clear by the
  // extraction loop below, so reuse never needs a wipe.
  if (numeric && scratch.window_vals.size() < window_columns) {
    scratch.window_vals.resize(window_columns, 0.0);
  }
  if (scratch.occupied.size() < window_columns) {
    scratch.occupied.resize(window_columns, 0);
  }
  const auto b_cols = b.col_indices();
  const auto b_vals = b.values();

  for (index_t window_start = col_min; window_start <= col_max;
       window_start += window) {
    const index_t window_end =
        static_cast<index_t>(std::min<std::int64_t>(
            static_cast<std::int64_t>(window_start) + window - 1, col_max));
    ++result.passes;

    const bool prefetch_gathers = simd != SimdBackend::kScalar;
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      // Warm the next row's unconsumed prefix while this one accumulates —
      // a pure cache hint, gated off the scalar reference path.
      if (prefetch_gathers && i + 1 < a_cols.size()) {
        const auto next = static_cast<std::size_t>(scratch.cursor[i + 1]);
        simd::prefetch(b_cols.data() + next);
        if (numeric) simd::prefetch(b_vals.data() + next);
      }
      const auto row_end = b.row_offsets()[static_cast<std::size_t>(a_cols[i]) + 1];
      offset_t& cur = scratch.cursor[i];
      while (cur < row_end && b_cols[static_cast<std::size_t>(cur)] <= window_end) {
        const index_t c = b_cols[static_cast<std::size_t>(cur)];
        const auto slot = static_cast<std::size_t>(c - window_start);
        scratch.occupied[slot] = 1;
        if (numeric) {
          scratch.window_vals[slot] += a_vals[i] * b_vals[static_cast<std::size_t>(cur)];
        }
        ++cur;
        ++result.element_touches;
      }
    }

    // Extraction: compact the occupied window cells in order, clearing each
    // one so the scratch is ready for the next call.
    const auto cells = static_cast<std::size_t>(window_end - window_start) + 1;
    result.cells_scanned += static_cast<offset_t>(cells);
    if (simd == SimdBackend::kScalar) {
      extract_window_scalar(scratch, 0, cells, window_start, numeric);
    } else {
      extract_window_simd(scratch, cells, window_start, numeric, simd);
    }
  }
  SPECK_ASSERT(result.passes ==
                   static_cast<int>(ceil_div<std::size_t>(range, window_columns)),
               "dense pass count mismatch");
  result.cols = scratch.out_cols;
  result.vals = scratch.out_vals;
  return result;
}

DenseRowResult dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                    std::span<const value_t> a_vals, index_t col_min,
                                    index_t col_max, std::size_t window_columns,
                                    bool numeric) {
  DenseScratch scratch;
  const DenseRowView view = dense_accumulate_row(
      b, a_cols, a_vals, col_min, col_max, window_columns, numeric, scratch);
  DenseRowResult result;
  result.cols.assign(view.cols.begin(), view.cols.end());
  result.vals.assign(view.vals.begin(), view.vals.end());
  result.passes = view.passes;
  result.element_touches = view.element_touches;
  result.cells_scanned = view.cells_scanned;
  return result;
}

}  // namespace speck
