#include "speck/dense_acc.h"

#include <algorithm>

#include "common/bit_utils.h"
#include "common/check.h"

namespace speck {

DenseRowView dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                  std::span<const value_t> a_vals, index_t col_min,
                                  index_t col_max, std::size_t window_columns,
                                  bool numeric, DenseScratch& scratch) {
  SPECK_REQUIRE(window_columns > 0, "dense window must hold at least one column");
  SPECK_REQUIRE(!numeric || a_vals.size() == a_cols.size(),
                "numeric mode requires values for every A entry");
  DenseRowView result;
  scratch.out_cols.clear();
  scratch.out_vals.clear();
  if (a_cols.empty() || col_max < col_min) {
    result.passes = 0;
    return result;
  }

  const auto range = static_cast<std::size_t>(col_max - col_min) + 1;
  const auto window = static_cast<index_t>(window_columns);

  // Per referenced B row: cursor of the next unconsumed element. B rows are
  // sorted by column, so each pass consumes a prefix of the remainder.
  if (scratch.cursor.size() < a_cols.size()) scratch.cursor.resize(a_cols.size());
  for (std::size_t i = 0; i < a_cols.size(); ++i) {
    scratch.cursor[i] = b.row_offsets()[static_cast<std::size_t>(a_cols[i])];
  }

  // The window arrays grow monotonically and are returned all-clear by the
  // extraction loop below, so reuse never needs a wipe.
  if (numeric && scratch.window_vals.size() < window_columns) {
    scratch.window_vals.resize(window_columns, 0.0);
  }
  if (scratch.occupied.size() < window_columns) {
    scratch.occupied.resize(window_columns, 0);
  }
  const auto b_cols = b.col_indices();
  const auto b_vals = b.values();

  for (index_t window_start = col_min; window_start <= col_max;
       window_start += window) {
    const index_t window_end =
        static_cast<index_t>(std::min<std::int64_t>(
            static_cast<std::int64_t>(window_start) + window - 1, col_max));
    ++result.passes;

    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const auto row_end = b.row_offsets()[static_cast<std::size_t>(a_cols[i]) + 1];
      offset_t& cur = scratch.cursor[i];
      while (cur < row_end && b_cols[static_cast<std::size_t>(cur)] <= window_end) {
        const index_t c = b_cols[static_cast<std::size_t>(cur)];
        const auto slot = static_cast<std::size_t>(c - window_start);
        scratch.occupied[slot] = 1;
        if (numeric) {
          scratch.window_vals[slot] += a_vals[i] * b_vals[static_cast<std::size_t>(cur)];
        }
        ++cur;
        ++result.element_touches;
      }
    }

    // Extraction: compact the occupied window cells in order, clearing each
    // one so the scratch is ready for the next call.
    const auto cells = static_cast<std::size_t>(window_end - window_start) + 1;
    result.cells_scanned += static_cast<offset_t>(cells);
    for (std::size_t s = 0; s < cells; ++s) {
      if (!scratch.occupied[s]) continue;
      scratch.out_cols.push_back(window_start + static_cast<index_t>(s));
      if (numeric) {
        scratch.out_vals.push_back(scratch.window_vals[s]);
        scratch.window_vals[s] = 0.0;
      }
      scratch.occupied[s] = 0;
    }
  }
  SPECK_ASSERT(result.passes ==
                   static_cast<int>(ceil_div<std::size_t>(range, window_columns)),
               "dense pass count mismatch");
  result.cols = scratch.out_cols;
  result.vals = scratch.out_vals;
  return result;
}

DenseRowResult dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                    std::span<const value_t> a_vals, index_t col_min,
                                    index_t col_max, std::size_t window_columns,
                                    bool numeric) {
  DenseScratch scratch;
  const DenseRowView view = dense_accumulate_row(
      b, a_cols, a_vals, col_min, col_max, window_columns, numeric, scratch);
  DenseRowResult result;
  result.cols.assign(view.cols.begin(), view.cols.end());
  result.vals.assign(view.vals.begin(), view.vals.end());
  result.passes = view.passes;
  result.element_touches = view.element_touches;
  result.cells_scanned = view.cells_scanned;
  return result;
}

}  // namespace speck
