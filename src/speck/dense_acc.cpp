#include "speck/dense_acc.h"

#include <algorithm>

#include "common/bit_utils.h"
#include "common/check.h"

namespace speck {

DenseRowResult dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                    std::span<const value_t> a_vals, index_t col_min,
                                    index_t col_max, std::size_t window_columns,
                                    bool numeric) {
  SPECK_REQUIRE(window_columns > 0, "dense window must hold at least one column");
  SPECK_REQUIRE(!numeric || a_vals.size() == a_cols.size(),
                "numeric mode requires values for every A entry");
  DenseRowResult result;
  if (a_cols.empty() || col_max < col_min) {
    result.passes = 0;
    return result;
  }

  const auto range = static_cast<std::size_t>(col_max - col_min) + 1;
  const auto window = static_cast<index_t>(window_columns);

  // Per referenced B row: cursor of the next unconsumed element. B rows are
  // sorted by column, so each pass consumes a prefix of the remainder.
  std::vector<offset_t> cursor(a_cols.size());
  for (std::size_t i = 0; i < a_cols.size(); ++i) {
    cursor[i] = b.row_offsets()[static_cast<std::size_t>(a_cols[i])];
  }

  std::vector<value_t> window_vals(numeric ? window_columns : 0, 0.0);
  std::vector<bool> occupied(window_columns, false);
  const auto b_cols = b.col_indices();
  const auto b_vals = b.values();

  for (index_t window_start = col_min; window_start <= col_max;
       window_start += window) {
    const index_t window_end =
        static_cast<index_t>(std::min<std::int64_t>(
            static_cast<std::int64_t>(window_start) + window - 1, col_max));
    ++result.passes;

    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const auto row_end = b.row_offsets()[static_cast<std::size_t>(a_cols[i]) + 1];
      offset_t& cur = cursor[i];
      while (cur < row_end && b_cols[static_cast<std::size_t>(cur)] <= window_end) {
        const index_t c = b_cols[static_cast<std::size_t>(cur)];
        const auto slot = static_cast<std::size_t>(c - window_start);
        occupied[slot] = true;
        if (numeric) {
          window_vals[slot] += a_vals[i] * b_vals[static_cast<std::size_t>(cur)];
        }
        ++cur;
        ++result.element_touches;
      }
    }

    // Extraction: compact the occupied window cells in order.
    const auto cells = static_cast<std::size_t>(window_end - window_start) + 1;
    result.cells_scanned += static_cast<offset_t>(cells);
    for (std::size_t s = 0; s < cells; ++s) {
      if (!occupied[s]) continue;
      result.cols.push_back(window_start + static_cast<index_t>(s));
      if (numeric) {
        result.vals.push_back(window_vals[s]);
        window_vals[s] = 0.0;
      }
      occupied[s] = false;
    }
  }
  SPECK_ASSERT(result.passes ==
                   static_cast<int>(ceil_div<std::size_t>(range, window_columns)),
               "dense pass count mismatch");
  return result;
}

}  // namespace speck
