// Structure-reuse fast path: a frozen SpeckPlan for repeated multiplies
// with a fixed sparsity pattern.
//
// Iterative workloads (AMG setup, graph contraction, Newton steps) multiply
// the *same* pattern dozens of times with changing values. Everything spECK
// derives from structure alone — the row analysis, both load-balancer
// decisions, the per-block kernel plans, the exact pattern of C and its sort
// order — is captured here once, so subsequent multiplies run a values-only
// replay that skips analysis, global load balancing, the symbolic pass and
// sorting entirely (the cost model then charges only the numeric kernels,
// mirroring the amortizable share of Fig. 11's stage split). The plan
// carries a structural fingerprint so a stale plan is detected and falls
// back to the full pipeline instead of producing wrong values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.h"
#include "sim/launch.h"
#include "speck/config.h"
#include "speck/global_lb.h"
#include "speck/kernels.h"
#include "speck/row_analysis.h"

namespace speck {

/// Cheap structural identity of a planned (A, B, config) triple. The scalar
/// fields are O(1) to compare; the pattern hashes cover row_offsets and
/// col_indices of both inputs and are only computed (and compared) where an
/// O(nnz) check is wanted.
struct PlanFingerprint {
  index_t a_rows = 0, a_cols = 0, b_rows = 0, b_cols = 0;
  offset_t a_nnz = 0, b_nnz = 0;
  /// Hash over the SpeckConfig fields that affect planning (thresholds,
  /// features, fill/density knobs, fault spec — not host_threads,
  /// validate_inputs or the plan-cache switches).
  std::uint64_t config_hash = 0;
  /// splitmix64 chain over row_offsets + col_indices; 0 when not computed.
  std::uint64_t a_pattern_hash = 0;
  std::uint64_t b_pattern_hash = 0;

  /// Masked multiplies: the output mask joins the structural identity — a
  /// masked plan must never replay an unmasked product (or one under a
  /// different mask), and vice versa. The mask is structure-only like A and
  /// B: only its pattern enters (values of the mask never matter).
  bool masked = false;
  index_t mask_rows = 0, mask_cols = 0;
  offset_t mask_nnz = 0;
  std::uint64_t mask_pattern_hash = 0;

  /// O(1): dimensions, nnz, mask dimensions and the planning-config hash.
  bool matches_quick(const PlanFingerprint& o) const {
    return a_rows == o.a_rows && a_cols == o.a_cols && b_rows == o.b_rows &&
           b_cols == o.b_cols && a_nnz == o.a_nnz && b_nnz == o.b_nnz &&
           config_hash == o.config_hash && masked == o.masked &&
           mask_rows == o.mask_rows && mask_cols == o.mask_cols &&
           mask_nnz == o.mask_nnz;
  }

  /// Quick check plus the O(nnz) pattern hashes (all sides computed).
  bool matches_full(const PlanFingerprint& o) const {
    return matches_quick(o) && a_pattern_hash == o.a_pattern_hash &&
           b_pattern_hash == o.b_pattern_hash &&
           mask_pattern_hash == o.mask_pattern_hash;
  }
};

/// Hash of the planning-relevant SpeckConfig fields (see PlanFingerprint).
std::uint64_t planning_config_hash(const SpeckConfig& cfg);

/// splitmix64 chain over a matrix's row_offsets and col_indices (values are
/// deliberately excluded — the whole point is that only structure matters).
std::uint64_t csr_pattern_hash(const Csr& m);

/// Fingerprint of (a, b) under `cfg`. `with_pattern_hashes` = false skips
/// the O(nnz) hashing and leaves the hash fields 0 (use with matches_quick).
PlanFingerprint plan_fingerprint(const Csr& a, const Csr& b,
                                 const SpeckConfig& cfg,
                                 bool with_pattern_hashes = true);

/// Fingerprint of a *masked* product (a, b, mask) under `cfg`: the unmasked
/// fingerprint plus the mask's dimensions, nnz and pattern hash.
PlanFingerprint plan_fingerprint_masked(const Csr& a, const Csr& b,
                                        const Csr& mask, const SpeckConfig& cfg,
                                        bool with_pattern_hashes = true);

/// Per-run diagnostics beyond the common SpGemmResult (used by tests and
/// the ablation benchmarks).
struct SpeckDiagnostics {
  bool symbolic_lb_used = false;
  bool numeric_lb_used = false;
  /// Inputs to the Table 2 decision rule (consumed by the auto-tuner).
  LbDecisionStats symbolic_decision;
  LbDecisionStats numeric_decision;
  PassStats symbolic;
  PassStats numeric;
  offset_t products = 0;
  offset_t radix_sorted_elements = 0;
  int symbolic_blocks = 0;
  int numeric_blocks = 0;
  bool wide_keys = false;
  /// True when the multiply ran the values-only replay of a SpeckPlan
  /// instead of the full pipeline.
  bool plan_used = false;
  /// True when the replay was triggered by Speck's transparent single-slot
  /// plan cache (as opposed to an explicit multiply_with_plan call).
  bool plan_cache_hit = false;
  /// True when multiply_with_plan rejected its plan (stale fingerprint,
  /// incomplete plan) and fell back to the full pipeline.
  bool plan_fallback = false;
  std::string plan_fallback_reason;
  /// True when planning ran in estimated mode (resolved
  /// SpeckConfig::planning): the symbolic pass was skipped and binning /
  /// allocation ran off sampled NNZ estimates. The exact pattern of C is
  /// discovered by the numeric pass either way; see
  /// numeric.estimate_underflow_rows for the rows whose estimate
  /// underflowed and re-ran through the exact fallback.
  bool estimated_planning = false;
  /// True when the multiply ran the output-masked pipeline (multiply_masked
  /// or SpeckConfig::mask): no symbolic pass, no sorting pass, accumulators
  /// sized off min(products, mask_row_nnz).
  bool masked = false;
  /// Two-level executor telemetry (docs/performance.md "NUMA scale-out"),
  /// accumulated over every partitioned pass of the multiply. Empty vectors
  /// with partitions == 1 (the flat executor). Schedule-dependent — team
  /// seconds, steal counts, imbalance — and therefore deliberately outside
  /// the bit-identity-gated PassStats counters.
  PartitionDiag partition;
};

/// Frozen pattern-dependent state of one (A, B, config) structure: the full
/// planning output plus the exact pattern of C and a values-only replay
/// program. Build with Speck::plan(); consume with Speck::multiply_with_plan()
/// — or let Speck's transparent cache do both.
struct SpeckPlan {
  PlanFingerprint fingerprint;

  /// False when the structure could not be captured (32-bit index overflow,
  /// failed pipeline run); multiply_with_plan then falls back.
  bool complete = false;
  std::string incomplete_reason;

  // Planning state (structure-only), kept for introspection and so the
  // executor can keep serving its numeric re-execution interface.
  RowAnalysis analysis;
  BinPlan symbolic_plan;
  BinPlan numeric_plan;
  std::vector<index_t> row_nnz;  ///< exact NNZ per row of C
  bool wide_keys = false;

  /// The exact pattern of C from the symbolic + numeric passes, already in
  /// final (sorted) order — replays write values straight into it.
  std::vector<offset_t> c_row_offsets;
  std::vector<index_t> c_col_indices;

  /// Values-only program: one entry per intermediate product.
  NumericReplayProgram program;

  /// Full-run observables captured at plan time. The pipeline is a
  /// deterministic function of structure and config — values never steer
  /// control flow — so a replay reports these verbatim and they are
  /// bit-identical to what a full run on the same structure would produce
  /// (only numeric.hot_path_allocs is overridden with the live replay
  /// count, keeping the zero-allocation gate honest).
  SpeckDiagnostics diagnostics;
  double numeric_seconds = 0.0;
  double sorting_seconds = 0.0;
  /// The numeric + radix-sort launches of the capturing run, replayed into
  /// Speck::last_trace() on every reuse.
  std::vector<sim::LaunchResult> replay_trace;

  /// Simulated seconds of the stages a replay skips (analysis + symbolic LB
  /// + symbolic + numeric LB): what one reuse amortizes away.
  double inspect_seconds = 0.0;

  offset_t c_nnz() const {
    return c_row_offsets.empty() ? 0 : c_row_offsets.back();
  }

  /// Allocated host-memory footprint of the full cached plan — planning
  /// state, C pattern arrays, replay program, captured diagnostics tail and
  /// replay trace (capacity-based; drives the plan cache's byte budget).
  std::size_t byte_size() const;
};

/// Pre-planning upper bound on the byte_size() a plan for (a, b) will have:
/// what the cache admission check and the worth-caching guard charge before
/// spending any planning work. O(nnz(A)).
std::size_t estimate_plan_bytes(const Csr& a, const Csr& b);

/// Builds the values-only replay program for a numeric plan: walks the
/// blocks exactly like run_numeric (same method selection, same A-row-outer
/// / B-row-inner order) and records, per intermediate product, the value
/// indices, the destination slot in the frozen C pattern and whether the
/// product assigns or accumulates (hash/direct rows assign their first
/// touch, dense rows add into a zero-initialized window). Parallelized over
/// C rows; the result is independent of the thread count. Requires the nnz
/// of A, B and C to fit 32-bit indices — the caller checks and marks the
/// plan incomplete otherwise.
NumericReplayProgram build_replay_program(const KernelContext& ctx,
                                          const BinPlan& numeric_plan,
                                          std::span<const index_t> row_nnz,
                                          std::span<const offset_t> c_row_offsets,
                                          std::span<const index_t> c_col_indices);

/// Masked variant: same product enumeration, but a product whose B column is
/// missing from the frozen masked C pattern gets the kSkip sentinel (the
/// replay drops it) and no dest word ever carries kAssignFirst — masked
/// replays add into a zero-filled buffer, mirroring the masked kernels'
/// 0.0 + p first-touch convention, so no per-row method derivation is
/// needed. Sets program.masked.
NumericReplayProgram build_replay_program_masked(
    const KernelContext& ctx, std::span<const offset_t> c_row_offsets,
    std::span<const index_t> c_col_indices);

}  // namespace speck
