// Symbolic and numeric SpGEMM kernel execution over a block plan
// (paper §4.3). Results are exact; device cycles are charged per block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "common/uninit.h"
#include "matrix/csr.h"
#include "sim/launch.h"
#include "sim/trace.h"
#include "speck/config.h"
#include "speck/global_lb.h"
#include "speck/row_analysis.h"
#include "speck/workspace.h"

namespace speck {

/// Scale-out telemetry of the two-level executor, accumulated across every
/// partitioned pass of a multiply (docs/performance.md "NUMA scale-out").
/// Deliberately separate from PassStats: everything here depends on the
/// schedule — wall-clock seconds, which team's lanes claimed which chunks —
/// and must never enter the bit-identity gates.
struct PartitionDiag {
  /// Resolved partition count of the run (1 = flat executor, struct empty).
  int partitions = 1;
  /// Per-team chunks executed / chunks claimed from foreign partitions /
  /// longest single-pass lane wall time, summed (seconds: summed maxima)
  /// over all partitioned pass loops of the multiply.
  std::vector<std::size_t> team_chunks;
  std::vector<std::size_t> team_steals;
  std::vector<double> team_seconds;
  /// NUMA node each team's lanes last reported running on (-1 unknown — a
  /// non-Linux host, or a team whose lanes never ran). Like every field
  /// here this is schedule telemetry: the OS may migrate threads between
  /// passes, so the value is the last observation, not a binding.
  std::vector<int> team_numa_nodes;

  std::size_t steal_count() const {
    std::size_t total = 0;
    for (const std::size_t s : team_steals) total += s;
    return total;
  }
  /// Max over teams of team_seconds divided by the team average (1.0 =
  /// perfectly balanced, 0 when nothing ran partitioned).
  double imbalance_ratio() const {
    if (team_seconds.empty()) return 0.0;
    double max = 0.0;
    double sum = 0.0;
    for (const double s : team_seconds) {
      max = max > s ? max : s;
      sum += s;
    }
    const double avg = sum / static_cast<double>(team_seconds.size());
    return avg > 0.0 ? max / avg : 0.0;
  }
  void merge(const PartitionedRunDiag& run) {
    if (team_chunks.size() < run.team_chunks.size()) {
      team_chunks.resize(run.team_chunks.size(), 0);
      team_steals.resize(run.team_steals.size(), 0);
      team_seconds.resize(run.team_seconds.size(), 0.0);
      team_numa_nodes.resize(run.team_chunks.size(), -1);
    }
    for (std::size_t t = 0; t < run.team_chunks.size(); ++t) {
      team_chunks[t] += run.team_chunks[t];
      team_steals[t] += run.team_steals[t];
      team_seconds[t] += run.team_seconds[t];
      if (t < run.team_numa_nodes.size() && run.team_numa_nodes[t] >= 0) {
        team_numa_nodes[t] = run.team_numa_nodes[t];
      }
    }
  }
};

/// Everything the kernels need; non-owning.
struct KernelContext {
  const Csr* a = nullptr;
  const Csr* b = nullptr;
  /// Output mask of a masked multiply (GraphBLAS structural semantics:
  /// only mask positions may appear in C); null on unmasked runs. Set by
  /// Speck::multiply_masked before the masked numeric pass.
  const Csr* mask = nullptr;
  const RowAnalysis* analysis = nullptr;
  const SpeckConfig* cfg = nullptr;
  const std::vector<KernelConfig>* configs = nullptr;
  const sim::DeviceSpec* device = nullptr;
  const sim::CostModel* model = nullptr;
  /// True when B has more than 2^27 columns and 64-bit keys are required.
  bool wide_keys = false;
  /// Optional: every simulated launch is recorded here (may be null).
  sim::LaunchTrace* trace = nullptr;
  /// Host thread pool the passes parallelize over (global pool when null).
  ThreadPool* pool = nullptr;
  /// Per-worker kernel workspaces reused across blocks and multiplies.
  /// Optional: when null the passes fall back to a pass-local pool (warm-up
  /// cost every call, results identical either way).
  WorkspacePool* workspaces = nullptr;
  /// Optional fault injection (may be null). Shrinks the scratchpad
  /// capacities the kernels actually get relative to what binning assumed,
  /// and forces hash-map overflows — both only reroute rows onto the
  /// fallback paths; the numeric result stays exact.
  const FaultInjector* faults = nullptr;
  /// Resolved SIMD backend (never kAuto) the kernel hot loops dispatch on.
  /// Changes throughput only: results and counters are backend-independent.
  SimdBackend simd = SimdBackend::kScalar;
  /// Resolved partition count of the two-level executor (never 0; 1 = the
  /// flat single-cursor path, bit-for-bit today's behavior). Like the SIMD
  /// backend, partitioning changes host wall time only.
  int partitions = 1;
  /// Cross-partition work stealing (vs ascending-order helping).
  bool partition_steal = true;
  /// Optional: schedule telemetry sink for partitioned passes (may be null).
  PartitionDiag* partition_diag = nullptr;
  /// Optional: partition-local workspace pools. When null and partitions > 1
  /// the pass driver falls back to a pass-local set (results identical).
  PartitionWorkspaces* team_workspaces = nullptr;
  /// Optional: per-team first-touch copies of B (SpeckConfig::numa_local_b);
  /// when non-null and sized to `partitions`, team t's block bodies read
  /// (*team_b)[t] instead of *b. Copies are byte-identical to *b.
  const std::vector<Csr>* team_b = nullptr;

  /// Scratchpad capacity after fault injection (identity when none).
  std::size_t effective_capacity(std::size_t capacity) const {
    return faults != nullptr ? faults->scratchpad_capacity(capacity) : capacity;
  }
};

/// Accumulation method chosen for a row (paper: direct referencing, dense
/// accumulation, or hashing).
enum class RowMethod { kDirect, kDense, kHash };

/// Per-pass statistics shared by the symbolic and numeric outcomes.
struct PassStats {
  double seconds = 0.0;
  offset_t direct_rows = 0;
  offset_t dense_rows = 0;
  offset_t hash_rows = 0;
  /// Blocks that spilled their hash map to global memory.
  int global_hash_blocks = 0;
  /// Bytes pre-allocated for the global hash-map pool.
  std::size_t global_pool_bytes = 0;
  /// Total linear-probing steps over all scratchpad hash maps.
  std::size_t hash_probes = 0;
  /// Entries bulk-moved from scratchpad maps into the global fallback.
  std::size_t moved_entries = 0;
  /// Inserts performed directly against the global fallback map.
  std::size_t global_inserts = 0;
  /// Heap allocations observed inside block bodies (0 unless the binary
  /// installs the counting allocator of common/alloc_counter.h; 0 in the
  /// steady state either way — the zero-allocation hot-path gate).
  std::size_t hot_path_allocs = 0;
  /// Estimated planning only: rows whose sampled NNZ estimate underflowed
  /// the actual row size, forcing the per-row exact fallback re-run
  /// (docs/performance.md "Estimated planning"). Always 0 in exact mode.
  offset_t estimate_underflow_rows = 0;
};

struct SymbolicOutcome {
  /// Exact NNZ of every row of C.
  std::vector<index_t> row_nnz;
  PassStats stats;
};

/// Runs the symbolic pass over the given block plan.
SymbolicOutcome run_symbolic(const KernelContext& ctx, const BinPlan& plan);

struct NumericOutcome {
  Csr c;
  PassStats stats;
  /// Simulated seconds of the separate radix-sort pass for rows the large
  /// hash kernels emitted unsorted (0 when no such rows exist).
  double sorting_seconds = 0.0;
  /// Elements that went through the separate radix pass.
  offset_t radix_sorted_elements = 0;
};

/// Runs the numeric pass; `row_nnz` comes from the symbolic outcome.
NumericOutcome run_numeric(const KernelContext& ctx, const BinPlan& plan,
                           std::span<const index_t> row_nnz);

/// Values-only replay program: one entry per intermediate product, grouped
/// by row of C and ordered exactly like the numeric kernels accumulate
/// (rows of A outer, referenced rows of B inner).
///
/// Only the *destination* of each product is stored: the (a, b) value
/// positions are re-derived at replay time by walking A's and B's CSR
/// structure in the same order — the fingerprint pins both patterns, so the
/// walk reproduces the build-time enumeration exactly, and the B-value reads
/// become sequential per segment instead of gathered. Each dest word packs
/// the C value slot in the low 31 bits and the assign-first flag in the top
/// bit. The flag mirrors the accumulator semantics of the row's method —
/// hash and direct rows *assign* their first contribution to a slot, dense
/// rows add into a zero-initialized window — which is what keeps replayed
/// values bit-identical to a full numeric pass. Built once per plan by
/// build_replay_program (plan.h).
struct NumericReplayProgram {
  /// Top bit of a dest word: store the product instead of adding it.
  static constexpr std::uint32_t kAssignFirst = 0x8000'0000u;
  /// Masked programs only: sentinel dest word for a product whose B column
  /// is not in the frozen masked C pattern — the replay drops it. Never a
  /// valid slot|kAssignFirst encoding (slots are < 2^31 - 1, see
  /// kMaxReplayIndex in speck.cpp).
  static constexpr std::uint32_t kSkip = 0xFFFF'FFFFu;
  /// True for programs built from a masked plan: dest words may be kSkip
  /// and never carry kAssignFirst (masked accumulation adds into the
  /// zero-filled output buffer, mirroring the masked kernels' 0.0 + p
  /// first-touch convention). Selects the skip-aware replay inner loop.
  bool masked = false;
  /// rows+1 prefix: ops of C row r live in [row_op_start[r], row_op_start[r+1]).
  std::vector<offset_t> row_op_start;
  // The dest array is the dominant capture cost (4 bytes per intermediate
  // product) and every element is written by build_replay_program before any
  // read, so resize() skips the zero fill (common/uninit.h).
  UninitVector<std::uint32_t> dest;  ///< output slot | kAssignFirst

  std::size_t ops() const { return dest.size(); }
  /// Allocated (capacity-based) host footprint — what the plan cache's byte
  /// budget is charged for.
  std::size_t byte_size() const {
    return row_op_start.capacity() * sizeof(offset_t) +
           dest.capacity() * sizeof(std::uint32_t);
  }
};

/// Replays the program against fresh values of (a, b), writing straight into
/// `out` (sized c_nnz, zero-initialized by the caller). Pattern-independent
/// work only: no analysis, no hashing, no sorting. Parallelized over `pool`
/// with fixed chunking, so results are bit-identical at any thread count.
/// Returns the heap allocations observed inside the replay loop (the
/// zero-allocation hot-path metric; always 0 — the loop owns no containers).
/// `simd` enables software prefetch of upcoming gather targets on the vector
/// backends; the arithmetic and its order are backend-independent.
std::size_t replay_numeric_values(const Csr& a, const Csr& b,
                                  const NumericReplayProgram& program,
                                  ThreadPool* pool, std::span<value_t> out,
                                  SimdBackend simd = SimdBackend::kScalar);

/// Single-threaded replay_numeric_values that runs entirely on the calling
/// thread with zero heap traffic of its own (the parallel variant owns a
/// per-call chunk-counter vector). This is the service replay path: many
/// client threads each replay their own request concurrently, so intra-
/// request parallelism would only add contention. Bit-identical to the
/// parallel variant.
std::size_t replay_numeric_values_serial(const Csr& a, const Csr& b,
                                         const NumericReplayProgram& program,
                                         std::span<value_t> out,
                                         SimdBackend simd = SimdBackend::kScalar);

/// Method selection, exposed for tests.
RowMethod choose_symbolic_method(const KernelContext& ctx, index_t row,
                                 bool merged_block, const KernelConfig& config);
RowMethod choose_numeric_method(const KernelContext& ctx, index_t row,
                                index_t row_nnz, bool merged_block,
                                int config_index);

}  // namespace speck
