// Symbolic and numeric SpGEMM kernel execution over a block plan
// (paper §4.3). Results are exact; device cycles are charged per block.
#pragma once

#include <span>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "matrix/csr.h"
#include "sim/launch.h"
#include "sim/trace.h"
#include "speck/config.h"
#include "speck/global_lb.h"
#include "speck/row_analysis.h"
#include "speck/workspace.h"

namespace speck {

/// Everything the kernels need; non-owning.
struct KernelContext {
  const Csr* a = nullptr;
  const Csr* b = nullptr;
  const RowAnalysis* analysis = nullptr;
  const SpeckConfig* cfg = nullptr;
  const std::vector<KernelConfig>* configs = nullptr;
  const sim::DeviceSpec* device = nullptr;
  const sim::CostModel* model = nullptr;
  /// True when B has more than 2^27 columns and 64-bit keys are required.
  bool wide_keys = false;
  /// Optional: every simulated launch is recorded here (may be null).
  sim::LaunchTrace* trace = nullptr;
  /// Host thread pool the passes parallelize over (global pool when null).
  ThreadPool* pool = nullptr;
  /// Per-worker kernel workspaces reused across blocks and multiplies.
  /// Optional: when null the passes fall back to a pass-local pool (warm-up
  /// cost every call, results identical either way).
  WorkspacePool* workspaces = nullptr;
  /// Optional fault injection (may be null). Shrinks the scratchpad
  /// capacities the kernels actually get relative to what binning assumed,
  /// and forces hash-map overflows — both only reroute rows onto the
  /// fallback paths; the numeric result stays exact.
  const FaultInjector* faults = nullptr;

  /// Scratchpad capacity after fault injection (identity when none).
  std::size_t effective_capacity(std::size_t capacity) const {
    return faults != nullptr ? faults->scratchpad_capacity(capacity) : capacity;
  }
};

/// Accumulation method chosen for a row (paper: direct referencing, dense
/// accumulation, or hashing).
enum class RowMethod { kDirect, kDense, kHash };

/// Per-pass statistics shared by the symbolic and numeric outcomes.
struct PassStats {
  double seconds = 0.0;
  offset_t direct_rows = 0;
  offset_t dense_rows = 0;
  offset_t hash_rows = 0;
  /// Blocks that spilled their hash map to global memory.
  int global_hash_blocks = 0;
  /// Bytes pre-allocated for the global hash-map pool.
  std::size_t global_pool_bytes = 0;
  /// Total linear-probing steps over all scratchpad hash maps.
  std::size_t hash_probes = 0;
  /// Entries bulk-moved from scratchpad maps into the global fallback.
  std::size_t moved_entries = 0;
  /// Inserts performed directly against the global fallback map.
  std::size_t global_inserts = 0;
  /// Heap allocations observed inside block bodies (0 unless the binary
  /// installs the counting allocator of common/alloc_counter.h; 0 in the
  /// steady state either way — the zero-allocation hot-path gate).
  std::size_t hot_path_allocs = 0;
};

struct SymbolicOutcome {
  /// Exact NNZ of every row of C.
  std::vector<index_t> row_nnz;
  PassStats stats;
};

/// Runs the symbolic pass over the given block plan.
SymbolicOutcome run_symbolic(const KernelContext& ctx, const BinPlan& plan);

struct NumericOutcome {
  Csr c;
  PassStats stats;
  /// Simulated seconds of the separate radix-sort pass for rows the large
  /// hash kernels emitted unsorted (0 when no such rows exist).
  double sorting_seconds = 0.0;
  /// Elements that went through the separate radix pass.
  offset_t radix_sorted_elements = 0;
};

/// Runs the numeric pass; `row_nnz` comes from the symbolic outcome.
NumericOutcome run_numeric(const KernelContext& ctx, const BinPlan& plan,
                           std::span<const index_t> row_nnz);

/// Method selection, exposed for tests.
RowMethod choose_symbolic_method(const KernelContext& ctx, index_t row,
                                 bool merged_block, const KernelConfig& config);
RowMethod choose_numeric_method(const KernelContext& ctx, index_t row,
                                index_t row_nnz, bool merged_block,
                                int config_index);

}  // namespace speck
