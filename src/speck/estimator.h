// Estimation-based planning (the "estimated" PlanningMode).
//
// Exact planning derives every decision — binning, kernel choice, C
// allocation — from an O(NNZ_A) row analysis plus a full symbolic pass (an
// O(products) hashing pass whose only output is the exact NNZ of every row
// of C). Estimated planning keeps the cheap analysis but replaces the
// symbolic pass with a sampled estimator: per row of A it probes a bounded
// number of referenced B-row lengths, extrapolates the intermediate-product
// count, applies a distinct-column (compression) correction and a
// configurable safety margin, and plans off the resulting per-row NNZ
// *upper estimates*. The numeric pass then discovers the exact
// pattern of C itself: rows are merged into estimate-sized staging slots and
// compacted; a row whose estimate underflowed its true size is re-run
// through an exact fallback pass, so the result is exact (and bit-identical
// to exact-mode planning) regardless of estimator quality. The fallback
// rate is surfaced via PassStats::estimate_underflow_rows.
#pragma once

#include <span>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "matrix/csr.h"
#include "sim/launch.h"
#include "speck/config.h"
#include "speck/kernels.h"
#include "speck/row_analysis.h"

namespace speck {

/// Output of the estimator: an exact RowAnalysis (products, longest B row,
/// tight per-row column ranges — the same O(nnz_A) scan analyze_rows runs,
/// so binning and dense-window selection match the exact pipeline), plus
/// the *sampled* per-row NNZ upper estimates that size the estimated
/// numeric pass's staging slots.
struct RowEstimate {
  RowAnalysis analysis;
  /// Estimated NNZ of each row of C after compression correction and the
  /// safety margin, clamped to [0, b.cols()]. This is the staging capacity
  /// the estimated numeric pass allocates per row.
  std::vector<index_t> row_nnz_estimate;
};

/// Runs the exact lightweight row scan, then samples
/// `cfg.estimator_samples` referenced B-row lengths per row of A for the
/// NNZ estimate (with replacement, stateless per-row PRNG seeded from
/// cfg.estimator_seed — estimates are a pure function of structure, config
/// and seed, independent of the thread count). Rows with at most
/// `estimator_samples` entries use their exact product count instead. The
/// simulated cost is charged to `launch`; `faults` may perturb the product
/// counts (scale_estimate, as in analyze_rows) and the NNZ estimates
/// (scale_sampled_estimate — the forced-underflow test hook).
RowEstimate estimate_rows(const Csr& a, const Csr& b, const SpeckConfig& cfg,
                          sim::Launch& launch, ThreadPool* pool = nullptr,
                          const FaultInjector* faults = nullptr);

/// Result of the estimated numeric pass: the exact, sorted C plus the
/// *actual* per-row NNZ discovered along the way.
struct EstimatedNumericOutcome {
  Csr c;
  /// Exact NNZ of every row of C (what the symbolic pass would have
  /// reported; stored in SpeckPlan::row_nnz).
  std::vector<index_t> row_nnz;
  /// stats.estimate_underflow_rows counts the rows re-run through the
  /// exact fallback pass.
  PassStats stats;
  double sorting_seconds = 0.0;
  offset_t radix_sorted_elements = 0;
};

/// Runs the numeric pass directly off the NNZ estimates, skipping the
/// symbolic pass entirely. Per row: merges the intermediate products
/// through a column-scatter map into an estimate-sized staging slot,
/// counting the true NNZ even past the slot's capacity; fitting rows are
/// sorted in place and compacted to exact offsets, underflowed rows are
/// recomputed into their exactly-sized final slots by a separate fallback
/// launch. Accumulation order per output column is ascending-A-column —
/// identical to the exact kernels and the values-only replay — and the
/// accumulator semantics per row mirror run_numeric's method selection
/// (evaluated on the *estimates*, exactly as build_replay_program will
/// re-derive it), so C is bit-identical to exact-mode planning at any
/// thread count.
EstimatedNumericOutcome run_numeric_estimated(
    const KernelContext& ctx, const BinPlan& plan,
    std::span<const index_t> row_nnz_estimate);

}  // namespace speck
