// Per-worker-thread kernel workspaces: the zero-allocation hot path.
//
// Every simulated block needs transient state — a scratchpad hash map, a
// spill map, extraction/sort buffers, dense window arrays, load-balancer
// sweep scratch. Constructing those per block made heap traffic the
// dominant host cost and belied the paper's claim that the per-row kernels
// are lean. A KernelWorkspace owns all of it, one workspace per thread-pool
// worker (ThreadPool::parallel_for guarantees at most one chunk per worker
// id at a time, so no locking): every buffer is cleared in O(1) (epoch tags
// on the hash maps, clear() on vectors with retained capacity) and grows
// monotonically, so after a warm-up pass every block executes without a
// single heap allocation.
//
// The pool is owned by the Speck instance and survives across multiplies,
// which is what makes repeated executor/iterative workloads (AMG, Markov
// chains) allocation-free in the steady state. Reuse across thread counts is
// safe: the pool only ever grows, and block-to-worker assignment never
// influences results (chunk boundaries are a pure function of the range).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fault_injection.h"
#include "speck/dense_acc.h"
#include "speck/hash_acc.h"

namespace speck {

/// All transient per-block state for one worker thread. Borrow the members
/// directly; every acquisition clears the buffer but keeps its capacity.
class KernelWorkspace {
 public:
  /// Symbolic accumulator reset for a new block of the given capacity.
  SymbolicHashAccumulator& symbolic_acc(std::size_t capacity,
                                        const FaultInjector* faults,
                                        SimdBackend simd = SimdBackend::kScalar) {
    symbolic_.begin_block(capacity, faults, simd);
    return symbolic_;
  }

  /// Numeric accumulator reset for a new block of the given capacity.
  NumericHashAccumulator& numeric_acc(std::size_t capacity,
                                      const FaultInjector* faults,
                                      SimdBackend simd = SimdBackend::kScalar) {
    numeric_.begin_block(capacity, faults, simd);
    return numeric_;
  }

  /// Masked accumulator reset for a new row/block of the given capacity
  /// (the masked numeric pass pre-seeds mask columns into it).
  MaskedNumericAccumulator& masked_acc(std::size_t capacity,
                                       const FaultInjector* faults,
                                       SimdBackend simd = SimdBackend::kScalar) {
    masked_.begin_block(capacity, faults, simd);
    return masked_;
  }

  /// Per-local-row NNZ counts (symbolic extraction).
  std::vector<index_t>& row_counts() { return row_counts_; }

  /// Raw (key, value) entries extracted from a numeric accumulator.
  std::vector<DeviceHashMap::Entry>& entries() { return entries_; }

  /// Counting-sort scratch: per-row segment starts and the row-bucketed
  /// entry buffer (replaces the per-block vector-of-vectors bucketing).
  std::vector<std::size_t>& row_starts() { return row_starts_; }
  std::vector<std::size_t>& row_cursors() { return row_cursors_; }
  std::vector<DeviceHashMap::Entry>& bucketed_entries() { return bucketed_; }

  /// Striped counting-sort histogram scratch (numeric bucketing): the
  /// non-primary sub-histograms, merged into row_starts() with
  /// simd::add_u64 after the build.
  std::vector<std::uint64_t>& histogram_stripes() { return histogram_stripes_; }

  /// charge_row_sweep scratch: per-group lockstep iteration counts and the
  /// unique-referenced-B-row buffer.
  std::vector<std::size_t>& group_iterations() { return group_iterations_; }
  std::vector<index_t>& referenced_rows() { return referenced_; }

  /// Dense-accumulator window/cursor/output buffers.
  DenseScratch& dense() { return dense_; }

  /// Per-row first-touch bitmap used while building a plan's values-only
  /// replay program (build_replay_program).
  std::vector<std::uint8_t>& replay_seen() { return replay_seen_; }

  /// Column -> local C-row slot scatter map for the same build (sized to
  /// B's column count, deliberately never cleared between rows).
  std::vector<std::uint32_t>& replay_colmap() { return replay_colmap_; }

  /// Output-value staging buffer for service clients replaying a plan into
  /// borrowed storage (SpeckService::multiply_into). Grows monotonically
  /// like every other member, so steady-state replays stay allocation-free.
  std::vector<value_t>& replay_values() { return replay_values_; }

  /// Estimated numeric merge pass: column -> local slot scatter map plus the
  /// epoch tag array that makes it O(1)-resettable per row (a slot is live
  /// only when its epoch matches the current row's counter). Sized to B's
  /// column count by the caller; never cleared between rows.
  std::vector<std::uint32_t>& estimate_colmap() { return estimate_colmap_; }
  std::vector<std::uint32_t>& estimate_epoch() { return estimate_epoch_; }

  /// Current row counter for estimate_epoch(); the caller increments it per
  /// row and handles the (practically unreachable) uint32 wrap by refilling.
  std::uint32_t& estimate_epoch_counter() { return estimate_epoch_counter_; }

 private:
  SymbolicHashAccumulator symbolic_;
  NumericHashAccumulator numeric_;
  MaskedNumericAccumulator masked_;
  std::vector<index_t> row_counts_;
  std::vector<DeviceHashMap::Entry> entries_;
  std::vector<std::size_t> row_starts_;
  std::vector<std::size_t> row_cursors_;
  std::vector<DeviceHashMap::Entry> bucketed_;
  std::vector<std::uint64_t> histogram_stripes_;
  std::vector<std::size_t> group_iterations_;
  std::vector<index_t> referenced_;
  DenseScratch dense_;
  std::vector<std::uint8_t> replay_seen_;
  std::vector<std::uint32_t> replay_colmap_;
  std::vector<value_t> replay_values_;
  std::vector<std::uint32_t> estimate_colmap_;
  std::vector<std::uint32_t> estimate_epoch_;
  std::uint32_t estimate_epoch_counter_ = 0;
};

/// Lazily grown set of workspaces indexed by thread-pool worker id.
/// unique_ptr slots keep workspace addresses stable across growth.
///
/// Two access modes share the pool:
///  - indexed (`ensure` + `at`): one caller drives a parallel_for; worker
///    ids partition the slots, no locking needed — the original hot path.
///  - leased (`lease`): many concurrent service clients each check out a
///    whole workspace RAII-style; a mutex guards only the free-list
///    push/pop, never the workspace use itself. A pool must stick to one
///    mode at a time (the service keeps a dedicated client pool).
class WorkspacePool {
 public:
  /// Exclusive RAII checkout of one workspace; returns it on destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool, KernelWorkspace* ws) : pool_(pool), ws_(ws) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(ws_);
    }
    Lease(Lease&& o) noexcept : pool_(o.pool_), ws_(o.ws_) {
      o.pool_ = nullptr;
      o.ws_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    KernelWorkspace& operator*() const { return *ws_; }
    KernelWorkspace* operator->() const { return ws_; }

   private:
    WorkspacePool* pool_;
    KernelWorkspace* ws_;
  };

  /// Guarantees workspaces for worker ids [0, workers). Never shrinks, so
  /// switching between thread counts keeps warm buffers.
  void ensure(int workers);

  /// Workspace of a worker id previously covered by ensure().
  KernelWorkspace& at(int worker) { return *slots_[static_cast<std::size_t>(worker)]; }

  int size() const { return static_cast<int>(slots_.size()); }

  /// Checks out an idle workspace (most-recently-returned first, for warm
  /// buffers), growing the pool when all are busy. Thread-safe.
  Lease lease();

 private:
  void release(KernelWorkspace* ws);

  std::vector<std::unique_ptr<KernelWorkspace>> slots_;
  std::mutex lease_mutex_;
  std::vector<KernelWorkspace*> idle_;  ///< LIFO free list; guarded above
};

/// Partition-local workspace pools for the two-level executor
/// (ThreadPool::partitioned_for): one WorkspacePool per team, indexed by the
/// lane's slot within the team, so each team's lanes touch only their own
/// partition's warm buffers (first-touch placement on NUMA hosts). A lane
/// keeps using its own team's workspace even for stolen chunks — which
/// workspace runs a chunk never influences results, exactly the invariant
/// WorkspacePool already documents for worker ids. Grows monotonically like
/// WorkspacePool: switching partition or thread counts keeps warm buffers.
class PartitionWorkspaces {
 public:
  /// Guarantees `teams` pools with at least `slots_per_team` workspaces
  /// each (each team always has >= 1 slot: the serial path and lane-less
  /// teams use slot 0). Never shrinks.
  void ensure(int teams, int slots_per_team);

  WorkspacePool& team(int t) { return *teams_[static_cast<std::size_t>(t)]; }

  int teams() const { return static_cast<int>(teams_.size()); }

 private:
  std::vector<std::unique_ptr<WorkspacePool>> teams_;  // stable addresses
};

}  // namespace speck
