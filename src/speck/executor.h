// Inspector-executor interface: reuse the analysis, load-balancing plans and
// symbolic result across repeated multiplications with identical structure.
//
// Iterative applications (AMG cycles, Newton steps, graph iterations)
// multiply matrices whose *sparsity pattern* is fixed while values change.
// spECK's row analysis, binning and symbolic pass depend only on the
// pattern, so inspecting once and executing many times amortizes roughly
// half of the pipeline (Fig. 11's analysis + symbolic + load-balancing
// shares). Since the structure-reuse fast path landed, this class is a thin
// veneer over Speck::plan / Speck::multiply_with_plan with throwing
// mismatch semantics; new code can use those entry points directly
// (docs/performance.md "Structure reuse").
#pragma once

#include "ref/spgemm_api.h"
#include "speck/plan.h"
#include "speck/speck.h"

namespace speck {

/// Inspect-once / execute-many wrapper around the spECK pipeline.
class SpeckExecutor {
 public:
  SpeckExecutor(sim::DeviceSpec device, sim::CostModel model,
                SpeckConfig config = {})
      : speck_(device, model, config) {}

  /// Runs the pipeline once and freezes the pattern-dependent state —
  /// including the exact pattern of C and the values-only replay program.
  /// The matrices' *values* are not retained.
  SpeckPlan inspect(const Csr& a, const Csr& b);

  /// Numeric-only multiplication using a frozen plan. The structure of
  /// (a, b) must match the plan (checked by fingerprint; a structural
  /// mismatch throws InvalidArgument). The result's `seconds` covers only
  /// the numeric + sorting stages.
  SpGemmResult execute(const SpeckPlan& plan, const Csr& a, const Csr& b);

  const Speck& speck() const { return speck_; }
  Speck& speck() { return speck_; }

 private:
  Speck speck_;
};

}  // namespace speck
