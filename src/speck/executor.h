// Inspector-executor interface: reuse the analysis, load-balancing plans and
// symbolic result across repeated multiplications with identical structure.
//
// Iterative applications (AMG cycles, Newton steps, graph iterations)
// multiply matrices whose *sparsity pattern* is fixed while values change.
// spECK's row analysis, binning and symbolic pass depend only on the
// pattern, so inspecting once and executing many times amortizes roughly
// half of the pipeline (Fig. 11's analysis + symbolic + load-balancing
// shares).
#pragma once

#include <memory>
#include <optional>

#include "ref/spgemm_api.h"
#include "speck/speck.h"

namespace speck {

/// Frozen pattern-dependent state for one (A, B) structure.
struct SpeckPlan {
  RowAnalysis analysis;
  BinPlan symbolic_plan;
  BinPlan numeric_plan;
  std::vector<index_t> row_nnz;  ///< exact NNZ per row of C
  bool wide_keys = false;
  /// Structural fingerprint used to detect mismatched executes.
  index_t a_rows = 0, a_cols = 0, b_cols = 0;
  offset_t a_nnz = 0, b_nnz = 0;
  /// Simulated seconds spent inspecting (analysis + LB + symbolic).
  double inspect_seconds = 0.0;
};

/// Inspect-once / execute-many wrapper around the spECK pipeline.
class SpeckExecutor {
 public:
  SpeckExecutor(sim::DeviceSpec device, sim::CostModel model,
                SpeckConfig config = {})
      : speck_(device, model, config) {}

  /// Runs the pattern-dependent stages and freezes the plan.
  /// The matrices' *values* are not retained.
  SpeckPlan inspect(const Csr& a, const Csr& b);

  /// Numeric-only multiplication using a frozen plan. The structure of
  /// (a, b) must match the plan (checked by fingerprint; a structural
  /// mismatch throws InvalidArgument). The result's `seconds` covers only
  /// the numeric + sorting stages.
  SpGemmResult execute(const SpeckPlan& plan, const Csr& a, const Csr& b);

  const Speck& speck() const { return speck_; }
  Speck& speck() { return speck_; }

 private:
  Speck speck_;
};

}  // namespace speck
