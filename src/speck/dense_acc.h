// Windowed dense accumulator (paper §4.3 "Dense Rows of C", Fig. 5).
//
// Stores the output row in a dense scratchpad array covering a window of the
// column range. When [col_min, col_max] exceeds the window, multiple passes
// sweep successive windows; per-row cursors into B guarantee each
// intermediate product is visited exactly once across all passes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"
#include "common/types.h"
#include "matrix/csr.h"

namespace speck {

/// Reusable buffers for dense_accumulate_row, owned by a per-worker
/// KernelWorkspace. The window arrays are self-cleaning (extraction resets
/// every touched cell), so between calls only capacity growth ever
/// allocates; in the steady state the dense path is allocation-free.
struct DenseScratch {
  std::vector<offset_t> cursor;        ///< next unconsumed element per B row
  std::vector<value_t> window_vals;    ///< dense value window (numeric mode)
  std::vector<std::uint8_t> occupied;  ///< dense occupancy window
  std::vector<index_t> out_cols;       ///< compacted output columns
  std::vector<value_t> out_vals;       ///< compacted output values

  /// Masked dense path (run_numeric_masked): its own window, cursor and
  /// gather buffers so the self-cleaning invariant of `window_vals` /
  /// `occupied` above is never at risk — the masked pass zero-fills its
  /// window at the start of every pass instead. `mask_occupied` carries
  /// simd::kMaskedGatherPad bytes of tail padding for the AVX2 byte gather.
  std::vector<offset_t> mask_cursor;        ///< per-A-entry B cursor
  std::vector<value_t> mask_window_vals;    ///< masked dense value window
  std::vector<std::uint8_t> mask_occupied;  ///< masked occupancy (+ padding)
  std::vector<value_t> mask_gather_vals;    ///< per-mask-column gather output
  std::vector<std::uint8_t> mask_gather_touched;  ///< per-mask-column flags
};

struct DenseRowResult {
  /// Sorted output columns (dense accumulation emits in order; no sort pass).
  std::vector<index_t> cols;
  /// Accumulated values; empty in symbolic mode.
  std::vector<value_t> vals;
  /// Window passes executed (cost model input; 1 when the range fits).
  int passes = 0;
  /// B elements touched (equals the row's product count).
  offset_t element_touches = 0;
  /// Window cells scanned during extraction (cost model input).
  offset_t cells_scanned = 0;
};

/// Zero-copy view of one dense-accumulated row: `cols`/`vals` alias the
/// scratch buffers and stay valid until the scratch's next use.
struct DenseRowView {
  std::span<const index_t> cols;
  std::span<const value_t> vals;
  int passes = 0;
  offset_t element_touches = 0;
  offset_t cells_scanned = 0;
};

/// Accumulates one row of C densely into `scratch` (allocation-free once the
/// scratch has grown to the row's demands). `a_cols`/`a_vals` describe the
/// row of A; `window_columns` is the scratchpad window capacity in columns
/// (bitmask capacity for symbolic mode, value-array capacity for numeric
/// mode). In symbolic mode (`numeric == false`) values are not computed.
/// `simd` (resolved, never kAuto) selects how the extraction scans the
/// occupancy window — 32 bytes per step on the vector backends — without
/// changing the emitted columns, values, or any counter.
DenseRowView dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                  std::span<const value_t> a_vals, index_t col_min,
                                  index_t col_max, std::size_t window_columns,
                                  bool numeric, DenseScratch& scratch,
                                  SimdBackend simd = SimdBackend::kScalar);

/// Convenience wrapper with internal scratch, returning owned vectors.
DenseRowResult dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                    std::span<const value_t> a_vals, index_t col_min,
                                    index_t col_max, std::size_t window_columns,
                                    bool numeric);

}  // namespace speck
