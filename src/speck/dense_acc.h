// Windowed dense accumulator (paper §4.3 "Dense Rows of C", Fig. 5).
//
// Stores the output row in a dense scratchpad array covering a window of the
// column range. When [col_min, col_max] exceeds the window, multiple passes
// sweep successive windows; per-row cursors into B guarantee each
// intermediate product is visited exactly once across all passes.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "matrix/csr.h"

namespace speck {

struct DenseRowResult {
  /// Sorted output columns (dense accumulation emits in order; no sort pass).
  std::vector<index_t> cols;
  /// Accumulated values; empty in symbolic mode.
  std::vector<value_t> vals;
  /// Window passes executed (cost model input; 1 when the range fits).
  int passes = 0;
  /// B elements touched (equals the row's product count).
  offset_t element_touches = 0;
  /// Window cells scanned during extraction (cost model input).
  offset_t cells_scanned = 0;
};

/// Accumulates one row of C densely. `a_cols`/`a_vals` describe the row of A;
/// `window_columns` is the scratchpad window capacity in columns (bitmask
/// capacity for symbolic mode, value-array capacity for numeric mode).
/// In symbolic mode (`numeric == false`) values are not computed.
DenseRowResult dense_accumulate_row(const Csr& b, std::span<const index_t> a_cols,
                                    std::span<const value_t> a_vals, index_t col_min,
                                    index_t col_max, std::size_t window_columns,
                                    bool numeric);

}  // namespace speck
