// spECK kernel configurations and tunable parameters.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injection.h"
#include "common/simd.h"
#include "common/types.h"
#include "sim/device_spec.h"

namespace speck {

class Csr;

/// One of the six kernel configurations (paper §4.2 "Configuration"):
/// the largest uses the Volta 96 KB opt-in at 1024 threads (halving
/// occupancy), then 48 KB/1024, and each successive config halves both
/// scratchpad and threads.
struct KernelConfig {
  int threads = 0;
  std::size_t scratchpad_bytes = 0;
  bool reduced_occupancy = false;  ///< the 96 KB opt-in config

  /// Hash-map entries storable in the symbolic pass (index only, 32-bit).
  std::size_t symbolic_hash_capacity() const {
    return scratchpad_bytes / sizeof(key32_t);
  }
  /// Hash-map entries storable in the numeric pass (32-bit key + 64-bit value).
  std::size_t numeric_hash_capacity() const {
    return scratchpad_bytes / (sizeof(key32_t) + sizeof(value_t));
  }
  /// Dense-accumulator columns in the symbolic pass (one bit per column).
  std::size_t dense_symbolic_capacity() const { return scratchpad_bytes * 8; }
  /// Dense-accumulator columns in the numeric pass (value + occupancy flag).
  std::size_t dense_numeric_capacity() const {
    return scratchpad_bytes / (sizeof(value_t) + sizeof(key32_t));
  }
};

/// The per-device configuration ladder, smallest first. Six configs on a
/// Volta-class device, five when there is no scratchpad opt-in.
std::vector<KernelConfig> kernel_configs(const sim::DeviceSpec& device);

/// Auto-tunable thresholds for the conditional global load balancer
/// (paper §5, Table 2). The load balancer runs when
///   m_max/m_avg > ratio  AND  rows_c > min_rows
/// using the *large-kernel* set when the longest row falls into the largest
/// kernel configurations, the general set otherwise.
struct LoadBalanceThresholds {
  double ratio = 0.0;
  index_t min_rows = 0;
};

struct SpeckThresholds {
  LoadBalanceThresholds symbolic{39.2, 28000};
  LoadBalanceThresholds symbolic_large{6.0, 5431};
  LoadBalanceThresholds numeric{10.5, 23006};
  LoadBalanceThresholds numeric_large{1.3, 1238};
  /// How many of the largest kernels select the *_large set (paper: three of
  /// six in symbolic, two of six in numeric).
  int symbolic_large_kernel_count = 3;
  int numeric_large_kernel_count = 2;
};

/// Mode of the global load balancer; kAuto is spECK, the other two modes
/// exist for the Figure 14 ablation and the auto-tuner's measurements.
enum class GlobalLbMode { kAuto, kAlwaysOn, kAlwaysOff };

/// Feature toggles for the Figure 12/13/14 ablations.
struct SpeckFeatures {
  bool dense_accumulation = true;   ///< Fig. 12: hash vs hash+dense
  bool direct_rows = true;          ///< Fig. 12: +direct referencing
  bool dynamic_group_size = true;   ///< Fig. 13: dynamic g vs fixed 32
  int fixed_group_size = 32;        ///< used when dynamic_group_size is off
  /// Algorithm 2 block merging of the smallest bin (ablation: without it,
  /// every small row occupies its own under-filled block).
  bool block_merge = true;
  GlobalLbMode global_lb_symbolic = GlobalLbMode::kAuto;  ///< Fig. 14
  GlobalLbMode global_lb_numeric = GlobalLbMode::kAuto;   ///< Fig. 14

  void set_global_lb(GlobalLbMode mode) {
    global_lb_symbolic = mode;
    global_lb_numeric = mode;
  }
};

/// Thresholds auto-tuned with bench_table2_tuning over this repository's
/// reduced-scale synthetic corpus (matrices are ~10-100x smaller than the
/// SuiteSparse originals, so the `min_rows` gates shrink accordingly; the
/// ratio gates land close to the paper's). The benchmark suite uses these;
/// the paper's Table 2 values remain the SpeckThresholds defaults.
SpeckThresholds reduced_scale_thresholds();

/// How the planner derives per-row C sizes (docs/performance.md "Estimated
/// planning"). kExact runs the full symbolic pass; kEstimated replaces the
/// exact row analysis + symbolic pass with a sampled NNZ estimator (OCEAN-
/// style) and discovers the exact C pattern during the numeric pass, falling
/// back per row when an estimate underflows. C values and pattern are
/// bit-identical either way; only binning, allocation and planning cost may
/// differ. kAuto resolves via the SPECK_PLANNING environment variable, then
/// defaults to exact.
enum class PlanningMode { kAuto, kExact, kEstimated };

/// "auto" / "exact" / "estimated" (case-insensitive); nullopt on anything else.
std::optional<PlanningMode> parse_planning_mode(std::string_view name);

/// Stable lowercase name of a mode (inverse of parse_planning_mode).
const char* planning_mode_name(PlanningMode mode);

/// Resolves kAuto against the SPECK_PLANNING environment variable (invalid
/// values warn once on stderr and fall back), defaulting to kExact; concrete
/// modes are returned verbatim. Mirrors simd::resolve_backend.
PlanningMode resolve_planning(PlanningMode choice);

/// Resolves the effective partition count for the two-level executor
/// (docs/performance.md "NUMA scale-out"): an explicit `partitions >= 1` is
/// returned verbatim; 0 resolves via the SPECK_PARTITIONS environment
/// variable (invalid values warn once on stderr and fall back), defaulting
/// to 1 — the flat single-cursor executor. Mirrors resolve_planning.
int resolve_partitions(int partitions);

struct SpeckConfig {
  SpeckThresholds thresholds;
  SpeckFeatures features;
  /// Numeric hash maps are sized so that final occupancy stays below this
  /// fill rate (paper §4.2: 66%).
  double max_numeric_fill = 0.66;
  /// Symbolic dense accumulation is only used for rows with more than this
  /// multiple of the largest hash capacity in products (paper §4.3: 2x).
  double symbolic_dense_factor = 2.0;
  /// Numeric rows switch to dense accumulation above this density
  /// (paper §4.3: 18%, i.e. at most 3 dense window iterations).
  double dense_density_threshold = 0.18;
  /// Rows per merged block limit: 5 bits of local row index (paper §4.3).
  int max_rows_per_block = 32;
  /// Host threads the pipeline stages run on. 0 defers to the process-wide
  /// pool (SPECK_THREADS env or hardware concurrency); any value produces
  /// bit-identical results (see docs/tutorial.md "Parallel execution").
  int host_threads = 0;
  /// Transparent plan cache: when repeated multiply(a, b) calls present the
  /// same sparsity pattern (full structural fingerprint match, including
  /// this config's planning fields), the second consecutive call captures a
  /// SpeckPlan and every later one runs the values-only replay
  /// (docs/performance.md "Structure reuse"). Results stay bit-identical;
  /// only the skipped stages disappear from the timeline. Plans for
  /// different patterns coexist in a sharded LRU cache (docs/service.md).
  /// Off: every multiply runs the full pipeline.
  bool plan_cache = true;
  /// Shards of the transparent plan cache. More shards cut mutex contention
  /// when many threads serve disjoint patterns through one Speck/service;
  /// 1 gives a single global LRU order. Must be >= 1.
  int plan_cache_shards = 4;
  /// SIMD backend for the kernel hot loops (docs/performance.md "SIMD
  /// backends"). kAuto resolves via the SPECK_SIMD environment variable,
  /// then CPU detection; a concrete value is used verbatim (construction
  /// fails when the CPU lacks it). The backend never changes results —
  /// CSR bytes, simulated seconds and all PassStats counters are identical
  /// across backends — only host wall time.
  SimdBackend simd_backend = SimdBackend::kAuto;
  /// Host-memory ceiling for the transparent plan cache, accounted across
  /// all cached plans (SpeckPlan::byte_size, which includes the replay
  /// program, the C pattern arrays and the diagnostics tail). A structure
  /// whose estimated plan exceeds the whole budget is never planned for
  /// caching; inserts beyond the budget evict LRU plans (explicit
  /// Speck::plan() calls ignore the limit — that memory is the caller's
  /// deliberate choice).
  std::size_t plan_cache_limit_bytes = 512u << 20;
  /// Planning mode (docs/performance.md "Estimated planning"). kAuto
  /// resolves via SPECK_PLANNING, then exact. Estimated planning skips the
  /// exact symbolic pass: row analysis, load balancing, kernel choice and C
  /// allocation run off sampled per-row NNZ estimates, and the numeric pass
  /// discovers the exact pattern, re-running any row whose estimate
  /// underflowed (counted in PassStats::estimate_underflow_rows). The
  /// resolved mode is part of the plan fingerprint, so estimated and exact
  /// plans never collide in the plan cache.
  PlanningMode planning = PlanningMode::kAuto;
  /// A-row positions the estimator samples per row (B row lengths probed);
  /// rows at most this long are measured exactly. Must be >= 1.
  int estimator_samples = 32;
  /// Multiplier applied to the collision-corrected NNZ estimate before it
  /// sizes bins and the intermediate C allocation. Must be >= 1; larger
  /// margins trade memory for a lower underflow-fallback rate.
  double estimator_safety_margin = 1.25;
  /// Seed of the estimator's stateless per-row PRNG. Part of the plan
  /// fingerprint: different seeds produce (deterministically) different
  /// estimates, hence potentially different binning.
  std::uint64_t estimator_seed = 0x0CEA0CEA0CEA0CEAull;
  /// Partitions of the two-level executor (docs/performance.md "NUMA
  /// scale-out"): pool workers split into per-partition teams, each with a
  /// partition-local chunk cursor and WorkspacePool; teams that drain their
  /// partition steal whole chunks from the most-loaded remaining one. The
  /// partition count, steal schedule and thread count never change results:
  /// chunk boundaries and output slots stay a pure function of the range,
  /// so CSR bytes and every PassStats counter are bit-identical — the knob
  /// (like host_threads) is excluded from the plan fingerprint. 0 resolves
  /// via SPECK_PARTITIONS, then 1 (today's flat executor). Must be <= 256.
  int partitions = 0;
  /// Cross-partition work stealing for the two-level executor. Off, idle
  /// teams still help drain remaining partitions in ascending order (work
  /// is conserved either way; only the victim choice differs), which
  /// isolates the stealing heuristic for benchmarks and tests.
  bool partition_steal = true;
  /// With partitions > 1, give every team its own first-touch copy of B:
  /// team t's lanes copy it inside the team (so on a NUMA host with pinned
  /// threads the pages land on the team's node) and all of the team's B-row
  /// gathers — including for stolen chunks — read the local copy. Copies
  /// are byte-identical, so results are unchanged; this trades memory
  /// (partitions x B bytes) for locality, analogous to
  /// MultiGpuConfig::replicate_b. Copies persist across multiplies and
  /// reuse capacity, keeping the steady state allocation-free.
  bool numa_local_b = false;
  /// Re-validates the structural invariants of both inputs (and their
  /// within-row sortedness, which the analysis relies on) at the start of
  /// every multiply; violations raise BadInput. Off by default: matrices
  /// built through the library's own constructors are already validated.
  bool validate_inputs = false;
  /// Output mask (docs/performance.md "Masked SpGEMM"): when set, every
  /// multiply() computes C = (A·B) ∘ mask with GraphBLAS structural
  /// semantics — only mask positions may appear in C, a position is kept iff
  /// at least one intermediate product lands on it (computed zeros
  /// included), and the symbolic pass is skipped entirely because the mask
  /// row is the candidate pattern. Must be an m×n CSR matching the product's
  /// shape (checked per multiply against the actual operands — dims always,
  /// full structure under validate_inputs); only its pattern matters, values
  /// are ignored. Shared, so configs stay cheap to copy; the mask's pattern
  /// hash joins the plan fingerprint, letting masked plans replay through
  /// the plan cache like any fixed-pattern multiply. Equivalent to calling
  /// Speck::multiply_masked explicitly.
  std::shared_ptr<const Csr> mask;
  /// Deterministic fault injection (docs/robustness.md). Default: no
  /// faults. Any injected fault may only change the simulated cost and
  /// planning — the numeric result stays exact — or surface as a typed
  /// ResourceExhausted-style failure.
  FaultSpec faults;
};

/// Validates a configuration; throws InvalidArgument with a description of
/// the first violated constraint. Called by the Speck constructor.
void validate(const SpeckConfig& config);

/// One-line-per-field human-readable dump of a configuration.
std::string describe(const SpeckConfig& config);

}  // namespace speck
