#include "speck/flat_map.h"

namespace speck {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two, multiple of 16
}  // namespace

FlatSpillMap::Locate FlatSpillMap::locate(key64_t key) {
  if (slot_count_ == 0 || (size_ + 1) * 4 > slot_count_ * 3) grow();
  return find(key);
}

FlatSpillMap::Locate FlatSpillMap::find(key64_t key) {
  const std::uint64_t h = key * kHashPrime;
  const std::uint8_t tag = hash_tag(h);
  std::size_t slot = slot_for(h);

  if (backend_ == SimdBackend::kScalar) {
    // Reference scan: one control byte at a time. The ≤75% load factor
    // guarantees an empty slot, so the walk always terminates.
    for (;;) {
      materialize_group(slot / simd::kGroupWidth);
      const std::uint8_t c = ctrl_[slot];
      if (c == kCtrlEmpty) return Locate{slot, false};
      if (c == tag && keys_[slot] == key) return Locate{slot, true};
      slot = (slot + 1) & (slot_count_ - 1);
    }
  }

  // Group scan: same probe sequence, one 16-byte group per iteration. The
  // capacity is a multiple of the group width, so groups never straddle the
  // wrap and need no sentinels. The home slot settles most probes with one
  // byte compare before the group machinery engages.
  materialize_group(slot / simd::kGroupWidth);
  const std::uint8_t c0 = ctrl_[slot];
  if (c0 == kCtrlEmpty) return Locate{slot, false};
  if (c0 == tag && keys_[slot] == key) return Locate{slot, true};
  for (;;) {
    const std::size_t base = slot & ~(simd::kGroupWidth - 1);
    const auto off = static_cast<unsigned>(slot - base);
    materialize_group(base / simd::kGroupWidth);
    const simd::GroupMasks m =
        simd::group_masks16(ctrl_.data() + base, tag, kCtrlEmpty, backend_);
    // Ascending walk over candidate stops: the first empty lane ends the
    // probe before any tag match past it is examined, like the scalar scan.
    std::uint32_t stops = (m.tag_mask | m.empty_mask) & (0xFFFFu << off);
    while (stops != 0) {
      const unsigned p = simd::lowest_bit(stops);
      if ((m.empty_mask >> p) & 1u) return Locate{base + p, false};
      if (keys_[base + p] == key) return Locate{base + p, true};
      stops &= stops - 1;
    }
    slot = (base + simd::kGroupWidth) & (slot_count_ - 1);
  }
}

bool FlatSpillMap::insert(key64_t key) {
  const Locate l = locate(key);
  if (l.present) return false;
  ctrl_[l.index] = hash_tag(key * kHashPrime);
  keys_[l.index] = key;
  vals_[l.index] = 0.0;
  ++size_;
  return true;
}

void FlatSpillMap::accumulate(key64_t key, value_t value) {
  const Locate l = locate(key);
  if (!l.present) {
    ctrl_[l.index] = hash_tag(key * kHashPrime);
    keys_[l.index] = key;
    vals_[l.index] = 0.0;
    ++size_;
  }
  vals_[l.index] += value;
}

bool FlatSpillMap::seed(key64_t key) {
  const Locate l = locate(key);
  if (l.present) return false;
  ctrl_[l.index] = hash_tag(key * kHashPrime);
  keys_[l.index] = key;
  vals_[l.index] = 0.0;
  touched_[l.index] = 0;
  ++size_;
  return true;
}

bool FlatSpillMap::accumulate_if_present(key64_t key, value_t value) {
  if (slot_count_ == 0) return false;
  const Locate l = find(key);
  if (!l.present) return false;
  vals_[l.index] += value;
  touched_[l.index] = 1;
  return true;
}

bool FlatSpillMap::lookup_touched(key64_t key, value_t* value) {
  if (slot_count_ == 0) return false;
  const Locate l = find(key);
  if (!l.present || touched_[l.index] == 0) return false;
  *value = vals_[l.index];
  return true;
}

void FlatSpillMap::grow() {
  const std::size_t next = slot_count_ == 0 ? kInitialSlots : slot_count_ * 2;
  std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
  std::vector<std::uint64_t> old_group_epoch = std::move(group_epoch_);
  std::vector<key64_t> old_keys = std::move(keys_);
  std::vector<value_t> old_vals = std::move(vals_);
  std::vector<std::uint8_t> old_touched = std::move(touched_);
  const std::size_t old_count = slot_count_;
  const std::uint64_t old_epoch = epoch_;

  ctrl_.assign(next, kCtrlEmpty);
  group_epoch_.assign(next / simd::kGroupWidth, 1);
  keys_.assign(next, 0);
  vals_.assign(next, 0.0);
  touched_.assign(next, 0);
  slot_count_ = next;
  epoch_ = 1;

  // Re-place the occupied slots in slot order; placement is a pure function
  // of key hash and table size (first empty slot at/after the home slot),
  // identical for every backend.
  for (std::size_t g = 0; g < old_count / simd::kGroupWidth; ++g) {
    if (old_group_epoch[g] != old_epoch) continue;
    const std::size_t base = g * simd::kGroupWidth;
    for (std::size_t i = base; i < base + simd::kGroupWidth; ++i) {
      if (old_ctrl[i] >= kCtrlEmpty) continue;
      const std::uint64_t h = old_keys[i] * kHashPrime;
      std::size_t slot = slot_for(h);
      while (ctrl_[slot] < kCtrlEmpty) slot = (slot + 1) & (slot_count_ - 1);
      ctrl_[slot] = hash_tag(h);
      keys_[slot] = old_keys[i];
      vals_[slot] = old_vals[i];
      touched_[slot] = old_touched[i];
    }
  }
}

void FlatSpillMap::clear() {
  ++epoch_;
  size_ = 0;
}

}  // namespace speck
