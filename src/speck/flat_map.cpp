#include "speck/flat_map.h"

#include <utility>

namespace speck {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two
}  // namespace

FlatSpillMap::Slot& FlatSpillMap::locate(key64_t key) {
  if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
  std::size_t i = slot_for(key);
  for (;;) {
    Slot& s = slots_[i];
    if (s.epoch != epoch_ || s.key == key) return s;
    i = (i + 1) & (slots_.size() - 1);
  }
}

bool FlatSpillMap::insert(key64_t key) {
  Slot& s = locate(key);
  if (s.epoch == epoch_) return false;
  s.key = key;
  s.value = 0.0;
  s.epoch = epoch_;
  ++size_;
  return true;
}

void FlatSpillMap::accumulate(key64_t key, value_t value) {
  Slot& s = locate(key);
  if (s.epoch != epoch_) {
    s.key = key;
    s.value = 0.0;
    s.epoch = epoch_;
    ++size_;
  }
  s.value += value;
}

void FlatSpillMap::grow() {
  const std::size_t next = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  std::vector<Slot> old = std::exchange(slots_, std::vector<Slot>(next));
  const std::uint64_t old_epoch = std::exchange(epoch_, 1);
  for (const Slot& s : old) {
    if (s.epoch != old_epoch) continue;
    std::size_t i = slot_for(s.key);
    while (slots_[i].epoch == epoch_) i = (i + 1) & (slots_.size() - 1);
    slots_[i].key = s.key;
    slots_[i].value = s.value;
    slots_[i].epoch = epoch_;
  }
}

void FlatSpillMap::clear() {
  ++epoch_;
  size_ = 0;
}

}  // namespace speck
