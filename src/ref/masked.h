// Masked SpGEMM: C<M> = A*B computed only at the positions of a mask
// (GraphBLAS semantics, structural mask). The canonical consumer is
// triangle counting, where C<A> = A*A touches exactly the wedges that can
// close into triangles — far less work than the full product.
#pragma once

#include "matrix/csr.h"

namespace speck {

/// C = (A*B) restricted to the structural non-zeros of `mask`
/// (complement = false) or to its zeros (complement = true).
/// `mask` must have the shape of C. Output rows sorted.
Csr masked_spgemm(const Csr& a, const Csr& b, const Csr& mask,
                  bool complement = false);

/// sum over the masked product's values; with mask = A (an undirected
/// adjacency pattern), `masked_product_sum(a, a, a) / 6` is the triangle
/// count.
value_t masked_product_sum(const Csr& a, const Csr& b, const Csr& mask);

}  // namespace speck
