// Semiring SpGEMM (GraphBLAS-flavoured, paper's graph-processing motivation
// [12]): C = A ⊕.⊗ B over a configurable semiring. The structure of the
// computation — and therefore everything spECK's analysis reasons about —
// is identical to (+,*) SpGEMM; only the scalar operations change.
//
// Host implementations, Gustavson-style: these serve the application
// examples (shortest paths, reachability) and as oracles; the simulated
// algorithms only implement the standard arithmetic semiring.
#pragma once

#include <algorithm>
#include <limits>

#include "matrix/csr.h"

namespace speck {

/// The standard arithmetic semiring (+, *, 0).
struct PlusTimes {
  static constexpr value_t identity = 0.0;
  static value_t combine(value_t a, value_t b) { return a * b; }
  static value_t reduce(value_t acc, value_t v) { return acc + v; }
};

/// The tropical semiring (min, +, inf): path-length composition.
/// C_ij = min_k (A_ik + B_kj) — one relaxation step of all-pairs shortest
/// paths.
struct MinPlus {
  static constexpr value_t identity = std::numeric_limits<value_t>::infinity();
  static value_t combine(value_t a, value_t b) { return a + b; }
  static value_t reduce(value_t acc, value_t v) { return std::min(acc, v); }
};

/// The boolean semiring (or, and): reachability composition.
/// Values are 0.0 / 1.0.
struct OrAnd {
  static constexpr value_t identity = 0.0;
  static value_t combine(value_t a, value_t b) {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
  static value_t reduce(value_t acc, value_t v) {
    return (acc != 0.0 || v != 0.0) ? 1.0 : 0.0;
  }
};

/// Gustavson SpGEMM over the given semiring. The output structure is the
/// structural product (an entry exists wherever at least one k matches),
/// matching the structural semantics of the (+,*) implementations.
template <typename Semiring>
Csr semiring_spgemm(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  std::vector<offset_t> offsets;
  offsets.reserve(static_cast<std::size_t>(a.rows()) + 1);
  offsets.push_back(0);
  std::vector<index_t> out_cols;
  std::vector<value_t> out_vals;

  std::vector<value_t> accumulator(static_cast<std::size_t>(b.cols()),
                                   Semiring::identity);
  std::vector<offset_t> marker(static_cast<std::size_t>(b.cols()), -1);
  std::vector<index_t> touched;
  for (index_t r = 0; r < a.rows(); ++r) {
    touched.clear();
    const auto a_cols = a.row_cols(r);
    const auto a_vals = a.row_vals(r);
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const index_t k = a_cols[i];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t j = 0; j < b_cols.size(); ++j) {
        const index_t c = b_cols[j];
        const value_t product = Semiring::combine(a_vals[i], b_vals[j]);
        if (marker[static_cast<std::size_t>(c)] != r) {
          marker[static_cast<std::size_t>(c)] = r;
          accumulator[static_cast<std::size_t>(c)] =
              Semiring::reduce(Semiring::identity, product);
          touched.push_back(c);
        } else {
          accumulator[static_cast<std::size_t>(c)] =
              Semiring::reduce(accumulator[static_cast<std::size_t>(c)], product);
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const index_t c : touched) {
      out_cols.push_back(c);
      out_vals.push_back(accumulator[static_cast<std::size_t>(c)]);
    }
    offsets.push_back(static_cast<offset_t>(out_cols.size()));
  }
  return Csr(a.rows(), b.cols(), std::move(offsets), std::move(out_cols),
             std::move(out_vals));
}

/// Element-wise ⊕ of two matrices over the semiring (union structure); used
/// to fold the "stay in place" option into shortest-path iterations.
template <typename Semiring>
Csr semiring_add(const Csr& a, const Csr& b);

}  // namespace speck
