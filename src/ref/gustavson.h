// Exact host-side SpGEMM (Gustavson's algorithm). This is the correctness
// oracle every simulated algorithm is tested against. No cost simulation.
#pragma once

#include "matrix/csr.h"

namespace speck {

/// C = A*B with a dense scatter accumulator per row. Output rows sorted.
Csr gustavson_spgemm(const Csr& a, const Csr& b);

/// Row lengths of C = A*B without computing values (exact symbolic pass).
std::vector<index_t> gustavson_symbolic(const Csr& a, const Csr& b);

}  // namespace speck
