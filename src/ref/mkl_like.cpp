#include "ref/mkl_like.h"

#include <algorithm>

#include "matrix/matrix_stats.h"
#include "ref/gustavson.h"

namespace speck {

SpGemmResult MklLikeCpu::multiply(const Csr& a, const Csr& b) {
  SpGemmResult result;
  const offset_t products = count_products(a, b);
  result.c = gustavson_spgemm(a, b);

  // Compute model: per-product accumulation cost parallelized over cores,
  // plus streaming the inputs and writing the output once.
  const double compute_seconds = static_cast<double>(products) *
                                 cpu_.cycles_per_product /
                                 (cpu_.cores * cpu_.clock_ghz * 1e9);
  const double traffic_bytes = static_cast<double>(a.byte_size()) +
                               static_cast<double>(b.byte_size()) +
                               static_cast<double>(result.c.byte_size());
  const double memory_seconds = traffic_bytes / cpu_.memory_bandwidth;
  result.seconds = std::max(compute_seconds, memory_seconds) +
                   cpu_.call_overhead_us * 1e-6;
  result.timeline.add(sim::Stage::kNumeric, result.seconds);
  // Host memory: inputs + output + one dense accumulator row per core.
  result.peak_memory_bytes =
      result.c.byte_size() +
      static_cast<std::size_t>(cpu_.cores) * static_cast<std::size_t>(b.cols()) *
          (sizeof(value_t) + sizeof(offset_t));
  return result;
}

}  // namespace speck
