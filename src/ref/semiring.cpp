#include "ref/semiring.h"

#include "matrix/coo.h"

namespace speck {
namespace {

template <typename Semiring>
Csr semiring_add_impl(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "element-wise add needs equal shapes");
  std::vector<offset_t> offsets;
  offsets.reserve(static_cast<std::size_t>(a.rows()) + 1);
  offsets.push_back(0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_cols(r);
    const auto av = a.row_vals(r);
    const auto bc = b.row_cols(r);
    const auto bv = b.row_vals(r);
    std::size_t i = 0, j = 0;
    while (i < ac.size() || j < bc.size()) {
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        cols.push_back(ac[i]);
        vals.push_back(Semiring::reduce(Semiring::identity, av[i]));
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        cols.push_back(bc[j]);
        vals.push_back(Semiring::reduce(Semiring::identity, bv[j]));
        ++j;
      } else {
        cols.push_back(ac[i]);
        vals.push_back(Semiring::reduce(av[i], bv[j]));
        ++i;
        ++j;
      }
    }
    offsets.push_back(static_cast<offset_t>(cols.size()));
  }
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols), std::move(vals));
}

}  // namespace

template <>
Csr semiring_add<PlusTimes>(const Csr& a, const Csr& b) {
  return semiring_add_impl<PlusTimes>(a, b);
}
template <>
Csr semiring_add<MinPlus>(const Csr& a, const Csr& b) {
  return semiring_add_impl<MinPlus>(a, b);
}
template <>
Csr semiring_add<OrAnd>(const Csr& a, const Csr& b) {
  return semiring_add_impl<OrAnd>(a, b);
}

}  // namespace speck
