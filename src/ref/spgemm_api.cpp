#include "ref/spgemm_api.h"

// Interface-only translation unit; anchors the vtable for SpGemmAlgorithm.

namespace speck {}  // namespace speck
