// Common interface implemented by spECK and every baseline algorithm.
//
// `multiply` computes C = A*B exactly (host arithmetic) while simulating the
// device-side execution: the result carries the modeled time, the per-stage
// timeline and the peak device-memory footprint — the quantities the paper's
// evaluation section compares.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "matrix/csr.h"
#include "sim/cost_model.h"
#include "sim/device_spec.h"
#include "sim/launch.h"
#include "sim/timeline.h"

namespace speck {

enum class SpGemmStatus {
  kOk,
  kOutOfMemory,   ///< simulated device memory exhausted
  kUnsupported,   ///< matrix shape/feature the method cannot handle
};

struct SpGemmResult {
  SpGemmStatus status = SpGemmStatus::kOk;
  std::string failure_reason;
  Csr c;
  /// Simulated end-to-end seconds (excluding the output allocation, which
  /// the paper excludes since it is identical for every method).
  double seconds = 0.0;
  sim::StageTimeline timeline;
  /// Peak simulated device memory including the output matrix (Fig. 10).
  std::size_t peak_memory_bytes = 0;
  /// KokkosKernels-like methods return unsorted rows (violating CSR).
  bool sorted_output = true;

  bool ok() const { return status == SpGemmStatus::kOk; }
  /// GFLOPS counting each product as 2 flops (multiply + add), paper §6.
  double gflops(offset_t products) const {
    return seconds > 0.0 ? 2.0 * static_cast<double>(products) / seconds * 1e-9 : 0.0;
  }
};

/// Abstract SpGEMM algorithm bound to a device model.
class SpGemmAlgorithm {
 public:
  SpGemmAlgorithm(sim::DeviceSpec device, sim::CostModel model)
      : device_(device), model_(model) {}
  virtual ~SpGemmAlgorithm() = default;

  virtual std::string name() const = 0;
  virtual SpGemmResult multiply(const Csr& a, const Csr& b) = 0;

  const sim::DeviceSpec& device() const { return device_; }
  const sim::CostModel& cost_model() const { return model_; }

 protected:
  sim::DeviceSpec device_;
  sim::CostModel model_;
};

}  // namespace speck
