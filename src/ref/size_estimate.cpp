#include "ref/size_estimate.h"

#include <algorithm>
#include <cmath>

#include "common/prng.h"

namespace speck {

SizeEstimate estimate_output_size(const Csr& a, const Csr& b, int rounds,
                                  std::uint64_t seed) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SPECK_REQUIRE(rounds >= 1, "at least one estimation round required");

  // Per round: draw an Exp(1) label per column of B; propagate minima
  // backwards: label(row k of B) = min over its columns' labels; then
  // label(row i of C) = min over referenced B rows. The minimum of n i.i.d.
  // Exp(1) variables is Exp(n), so 1/label estimates the number of distinct
  // columns reachable from row i — exactly nnz(row i of C).
  const auto rows = static_cast<std::size_t>(a.rows());
  std::vector<double> harmonic_sums(rows, 0.0);

  Xoshiro256 rng(seed);
  std::vector<double> column_labels(static_cast<std::size_t>(b.cols()));
  std::vector<double> b_row_minima(static_cast<std::size_t>(b.rows()));
  constexpr double kInfinity = std::numeric_limits<double>::infinity();

  for (int round = 0; round < rounds; ++round) {
    for (auto& label : column_labels) {
      // Exponential(1) via inverse CDF; next_double() < 1 keeps log finite.
      label = -std::log(1.0 - rng.next_double());
    }
    for (index_t k = 0; k < b.rows(); ++k) {
      double minimum = kInfinity;
      for (const index_t c : b.row_cols(k)) {
        minimum = std::min(minimum, column_labels[static_cast<std::size_t>(c)]);
      }
      b_row_minima[static_cast<std::size_t>(k)] = minimum;
    }
    for (index_t r = 0; r < a.rows(); ++r) {
      double minimum = kInfinity;
      for (const index_t k : a.row_cols(r)) {
        minimum = std::min(minimum, b_row_minima[static_cast<std::size_t>(k)]);
      }
      harmonic_sums[static_cast<std::size_t>(r)] += minimum;
    }
  }

  SizeEstimate estimate;
  estimate.row_nnz.resize(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    if (std::isinf(harmonic_sums[r]) || harmonic_sums[r] <= 0.0) {
      estimate.row_nnz[r] = 0.0;  // empty output row
      continue;
    }
    // Unbiased estimator for the rate of a sum of `rounds` exponentials.
    estimate.row_nnz[r] =
        static_cast<double>(rounds - 1) / harmonic_sums[r];
    if (rounds == 1) estimate.row_nnz[r] = 1.0 / harmonic_sums[r];
    estimate.total_nnz += estimate.row_nnz[r];
  }
  return estimate;
}

}  // namespace speck
