// Probabilistic output-size estimation for SpGEMM (Cohen's minimum-label
// estimator). The paper motivates spECK's conservative product-count bound
// by noting that "determining the exact size of C is similarly complex as
// the SpGEMM itself" (§1) — this module implements the classical cheap
// alternative: an unbiased estimator of nnz(C) from R rounds of random
// labels, O(R * (nnz(A) + nnz(B))) time and no intermediate products.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace speck {

struct SizeEstimate {
  /// Estimated NNZ per row of C.
  std::vector<double> row_nnz;
  double total_nnz = 0.0;
};

/// Cohen's estimator with `rounds` independent exponential label rounds.
/// Standard error of each row estimate is ~ nnz_row / sqrt(rounds).
SizeEstimate estimate_output_size(const Csr& a, const Csr& b, int rounds,
                                  std::uint64_t seed);

}  // namespace speck
