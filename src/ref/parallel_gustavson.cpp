#include "ref/parallel_gustavson.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace speck {
namespace {

/// Work for one thread: rows [begin, end), writing into preallocated output.
struct RowRange {
  index_t begin = 0;
  index_t end = 0;
};

void count_rows(const Csr& a, const Csr& b, RowRange range,
                std::vector<index_t>& row_nnz) {
  std::vector<offset_t> marker(static_cast<std::size_t>(b.cols()), -1);
  for (index_t r = range.begin; r < range.end; ++r) {
    index_t count = 0;
    for (const index_t k : a.row_cols(r)) {
      for (const index_t c : b.row_cols(k)) {
        if (marker[static_cast<std::size_t>(c)] != r) {
          marker[static_cast<std::size_t>(c)] = r;
          ++count;
        }
      }
    }
    row_nnz[static_cast<std::size_t>(r)] = count;
  }
}

void fill_rows(const Csr& a, const Csr& b, RowRange range,
               const std::vector<offset_t>& offsets, std::vector<index_t>& out_cols,
               std::vector<value_t>& out_vals) {
  std::vector<value_t> accumulator(static_cast<std::size_t>(b.cols()), 0.0);
  std::vector<offset_t> marker(static_cast<std::size_t>(b.cols()), -1);
  std::vector<index_t> touched;
  for (index_t r = range.begin; r < range.end; ++r) {
    touched.clear();
    const auto a_cols = a.row_cols(r);
    const auto a_vals = a.row_vals(r);
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const index_t k = a_cols[i];
      const value_t av = a_vals[i];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t j = 0; j < b_cols.size(); ++j) {
        const index_t c = b_cols[j];
        if (marker[static_cast<std::size_t>(c)] != r) {
          marker[static_cast<std::size_t>(c)] = r;
          accumulator[static_cast<std::size_t>(c)] = 0.0;
          touched.push_back(c);
        }
        accumulator[static_cast<std::size_t>(c)] += av * b_vals[j];
      }
    }
    std::sort(touched.begin(), touched.end());
    auto cursor = static_cast<std::size_t>(offsets[static_cast<std::size_t>(r)]);
    for (const index_t c : touched) {
      out_cols[cursor] = c;
      out_vals[cursor] = accumulator[static_cast<std::size_t>(c)];
      ++cursor;
    }
  }
}

/// Contiguous row ranges balanced by NNZ of A (cheap proxy for work).
std::vector<RowRange> split_rows(const Csr& a, int threads) {
  std::vector<RowRange> ranges;
  const offset_t per_thread = a.nnz() / threads + 1;
  index_t begin = 0;
  for (int t = 0; t < threads && begin < a.rows(); ++t) {
    index_t end = begin;
    offset_t taken = 0;
    while (end < a.rows() && (taken < per_thread || t + 1 == threads)) {
      taken += a.row_length(end);
      ++end;
      if (t + 1 < threads && taken >= per_thread) break;
    }
    if (t + 1 == threads) end = a.rows();
    ranges.push_back(RowRange{begin, end});
    begin = end;
  }
  return ranges;
}

}  // namespace

Csr parallel_gustavson_spgemm(const Csr& a, const Csr& b, int threads) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SPECK_REQUIRE(threads >= 0, "thread count must be non-negative");
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::max(1, std::min<int>(threads, std::max<index_t>(a.rows(), 1)));
  const auto ranges = split_rows(a, threads);

  // One pool task per NNZ-balanced range; the pool replaces the raw
  // std::thread batches this oracle used before the pipeline got a shared
  // host thread pool. Each range still writes disjoint output only.
  ThreadPool pool(threads);

  // Phase 1: symbolic counts per row, one task per range.
  std::vector<index_t> row_nnz(static_cast<std::size_t>(a.rows()), 0);
  pool.parallel_for(ranges.size(), 1,
                    [&](std::size_t begin, std::size_t end, int) {
                      for (std::size_t i = begin; i < end; ++i) {
                        count_rows(a, b, ranges[i], row_nnz);
                      }
                    });

  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t r = 0; r < a.rows(); ++r) {
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] + row_nnz[static_cast<std::size_t>(r)];
  }
  std::vector<index_t> out_cols(static_cast<std::size_t>(offsets.back()));
  std::vector<value_t> out_vals(static_cast<std::size_t>(offsets.back()));

  // Phase 2: numeric fill; ranges write disjoint output slices.
  pool.parallel_for(ranges.size(), 1,
                    [&](std::size_t begin, std::size_t end, int) {
                      for (std::size_t i = begin; i < end; ++i) {
                        fill_rows(a, b, ranges[i], offsets, out_cols, out_vals);
                      }
                    });

  return Csr(a.rows(), b.cols(), std::move(offsets), std::move(out_cols),
             std::move(out_vals));
}

}  // namespace speck
