#include "ref/gustavson.h"

#include <algorithm>

#include "common/prefix_sum.h"

namespace speck {

std::vector<index_t> gustavson_symbolic(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  std::vector<index_t> row_nnz(static_cast<std::size_t>(a.rows()), 0);
  std::vector<index_t> marker(static_cast<std::size_t>(b.cols()), -1);
  for (index_t r = 0; r < a.rows(); ++r) {
    index_t count = 0;
    for (const index_t k : a.row_cols(r)) {
      for (const index_t c : b.row_cols(k)) {
        if (marker[static_cast<std::size_t>(c)] != r) {
          marker[static_cast<std::size_t>(c)] = r;
          ++count;
        }
      }
    }
    row_nnz[static_cast<std::size_t>(r)] = count;
  }
  return row_nnz;
}

Csr gustavson_spgemm(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const auto row_nnz = gustavson_symbolic(a, b);
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t r = 0; r < a.rows(); ++r) {
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] + row_nnz[static_cast<std::size_t>(r)];
  }
  const auto total = static_cast<std::size_t>(offsets.back());
  std::vector<index_t> out_cols(total);
  std::vector<value_t> out_vals(total);

  std::vector<value_t> accumulator(static_cast<std::size_t>(b.cols()), 0.0);
  std::vector<offset_t> marker(static_cast<std::size_t>(b.cols()), -1);
  std::vector<index_t> touched;
  for (index_t r = 0; r < a.rows(); ++r) {
    touched.clear();
    const auto a_cols = a.row_cols(r);
    const auto a_vals = a.row_vals(r);
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const index_t k = a_cols[i];
      const value_t av = a_vals[i];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t j = 0; j < b_cols.size(); ++j) {
        const index_t c = b_cols[j];
        if (marker[static_cast<std::size_t>(c)] != r) {
          marker[static_cast<std::size_t>(c)] = r;
          accumulator[static_cast<std::size_t>(c)] = 0.0;
          touched.push_back(c);
        }
        accumulator[static_cast<std::size_t>(c)] += av * b_vals[j];
      }
    }
    std::sort(touched.begin(), touched.end());
    auto cursor = static_cast<std::size_t>(offsets[static_cast<std::size_t>(r)]);
    for (const index_t c : touched) {
      out_cols[cursor] = c;
      out_vals[cursor] = accumulator[static_cast<std::size_t>(c)];
      ++cursor;
    }
  }
  return Csr(a.rows(), b.cols(), std::move(offsets), std::move(out_cols),
             std::move(out_vals));
}

}  // namespace speck
