#include "ref/gustavson.h"

#include <algorithm>
#include <memory>

#include "common/prefix_sum.h"
#include "common/thread_pool.h"

namespace speck {
namespace {

/// Rows per parallel chunk. Fixed so chunk boundaries never depend on the
/// thread count; every row writes only its own output slots, which keeps
/// the oracle bit-identical to the single-threaded sweep.
constexpr std::size_t kRowChunk = 64;

/// Per-worker scratch for the dense-marker row sweep. Markers store the row
/// id they were touched by; row ids are globally unique, so one marker array
/// per worker is safely reused across chunks without re-initialization.
struct GustavsonScratch {
  std::vector<value_t> accumulator;
  std::vector<offset_t> marker;
  std::vector<index_t> touched;

  explicit GustavsonScratch(std::size_t cols, bool numeric)
      : accumulator(numeric ? cols : 0, 0.0), marker(cols, -1) {}
};

/// Lazily creates the calling worker's scratch (each worker id runs at most
/// one chunk at a time, so slot `worker` is never accessed concurrently).
GustavsonScratch& worker_scratch(
    std::vector<std::unique_ptr<GustavsonScratch>>& scratch, int worker,
    std::size_t cols, bool numeric) {
  auto& slot = scratch[static_cast<std::size_t>(worker)];
  if (!slot) slot = std::make_unique<GustavsonScratch>(cols, numeric);
  return *slot;
}

}  // namespace

std::vector<index_t> gustavson_symbolic(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  std::vector<index_t> row_nnz(static_cast<std::size_t>(a.rows()), 0);
  ThreadPool& pool = global_pool();
  std::vector<std::unique_ptr<GustavsonScratch>> scratch(
      static_cast<std::size_t>(pool.thread_count()));
  pool.parallel_for(
      static_cast<std::size_t>(a.rows()), kRowChunk,
      [&](std::size_t begin, std::size_t end, int worker) {
        GustavsonScratch& s = worker_scratch(
            scratch, worker, static_cast<std::size_t>(b.cols()), /*numeric=*/false);
        for (std::size_t ri = begin; ri < end; ++ri) {
          const auto r = static_cast<index_t>(ri);
          index_t count = 0;
          for (const index_t k : a.row_cols(r)) {
            for (const index_t c : b.row_cols(k)) {
              if (s.marker[static_cast<std::size_t>(c)] != r) {
                s.marker[static_cast<std::size_t>(c)] = r;
                ++count;
              }
            }
          }
          row_nnz[ri] = count;
        }
      });
  return row_nnz;
}

Csr gustavson_spgemm(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const auto row_nnz = gustavson_symbolic(a, b);
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t r = 0; r < a.rows(); ++r) {
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] + row_nnz[static_cast<std::size_t>(r)];
  }
  const auto total = static_cast<std::size_t>(offsets.back());
  std::vector<index_t> out_cols(total);
  std::vector<value_t> out_vals(total);

  // Numeric fill: each row accumulates serially (same order as the serial
  // sweep) and writes into its preallocated [offsets[r], offsets[r+1])
  // slice — disjoint across rows, so chunks need no synchronization.
  ThreadPool& pool = global_pool();
  std::vector<std::unique_ptr<GustavsonScratch>> scratch(
      static_cast<std::size_t>(pool.thread_count()));
  pool.parallel_for(
      static_cast<std::size_t>(a.rows()), kRowChunk,
      [&](std::size_t begin, std::size_t end, int worker) {
        GustavsonScratch& s = worker_scratch(
            scratch, worker, static_cast<std::size_t>(b.cols()), /*numeric=*/true);
        for (std::size_t ri = begin; ri < end; ++ri) {
          const auto r = static_cast<index_t>(ri);
          s.touched.clear();
          const auto a_cols = a.row_cols(r);
          const auto a_vals = a.row_vals(r);
          for (std::size_t i = 0; i < a_cols.size(); ++i) {
            const index_t k = a_cols[i];
            const value_t av = a_vals[i];
            const auto b_cols = b.row_cols(k);
            const auto b_vals = b.row_vals(k);
            for (std::size_t j = 0; j < b_cols.size(); ++j) {
              const index_t c = b_cols[j];
              if (s.marker[static_cast<std::size_t>(c)] != r) {
                s.marker[static_cast<std::size_t>(c)] = r;
                s.accumulator[static_cast<std::size_t>(c)] = 0.0;
                s.touched.push_back(c);
              }
              s.accumulator[static_cast<std::size_t>(c)] += av * b_vals[j];
            }
          }
          std::sort(s.touched.begin(), s.touched.end());
          auto cursor = static_cast<std::size_t>(offsets[ri]);
          for (const index_t c : s.touched) {
            out_cols[cursor] = c;
            out_vals[cursor] = s.accumulator[static_cast<std::size_t>(c)];
            ++cursor;
          }
        }
      });
  return Csr(a.rows(), b.cols(), std::move(offsets), std::move(out_cols),
             std::move(out_vals));
}

}  // namespace speck
