#include "ref/masked.h"

#include <algorithm>

namespace speck {

Csr masked_spgemm(const Csr& a, const Csr& b, const Csr& mask, bool complement) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SPECK_REQUIRE(mask.rows() == a.rows() && mask.cols() == b.cols(),
                "mask must have the output shape");

  std::vector<offset_t> offsets;
  offsets.reserve(static_cast<std::size_t>(a.rows()) + 1);
  offsets.push_back(0);
  std::vector<index_t> out_cols;
  std::vector<value_t> out_vals;

  // Row-wise Gustavson with a mask bitmap per row: only masked columns are
  // accumulated (the work saving masked SpGEMM exists for).
  std::vector<offset_t> allowed(static_cast<std::size_t>(b.cols()), -1);
  std::vector<value_t> accumulator(static_cast<std::size_t>(b.cols()), 0.0);
  std::vector<offset_t> touched_marker(static_cast<std::size_t>(b.cols()), -1);
  std::vector<index_t> touched;

  for (index_t r = 0; r < a.rows(); ++r) {
    if (!complement) {
      for (const index_t c : mask.row_cols(r)) {
        allowed[static_cast<std::size_t>(c)] = r;
      }
    } else {
      // Complement masks are handled by flagging the *excluded* columns.
      // Encoding -(r+2) never collides with the untouched marker (-1) or
      // with the positive row ids the inclusive mode writes.
      for (const index_t c : mask.row_cols(r)) {
        allowed[static_cast<std::size_t>(c)] = -static_cast<offset_t>(r) - 2;
      }
    }
    const auto is_allowed = [&](index_t c) {
      const offset_t flag = allowed[static_cast<std::size_t>(c)];
      return complement ? flag != -static_cast<offset_t>(r) - 2 : flag == r;
    };

    touched.clear();
    const auto a_cols = a.row_cols(r);
    const auto a_vals = a.row_vals(r);
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const index_t k = a_cols[i];
      const value_t av = a_vals[i];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t j = 0; j < b_cols.size(); ++j) {
        const index_t c = b_cols[j];
        if (!is_allowed(c)) continue;
        if (touched_marker[static_cast<std::size_t>(c)] != r) {
          touched_marker[static_cast<std::size_t>(c)] = r;
          accumulator[static_cast<std::size_t>(c)] = 0.0;
          touched.push_back(c);
        }
        accumulator[static_cast<std::size_t>(c)] += av * b_vals[j];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const index_t c : touched) {
      out_cols.push_back(c);
      out_vals.push_back(accumulator[static_cast<std::size_t>(c)]);
    }
    offsets.push_back(static_cast<offset_t>(out_cols.size()));
  }
  return Csr(a.rows(), b.cols(), std::move(offsets), std::move(out_cols),
             std::move(out_vals));
}

value_t masked_product_sum(const Csr& a, const Csr& b, const Csr& mask) {
  const Csr masked = masked_spgemm(a, b, mask);
  value_t total = 0.0;
  for (const value_t v : masked.values()) total += v;
  return total;
}

}  // namespace speck
