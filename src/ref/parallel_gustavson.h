// Multi-threaded host SpGEMM: row-partitioned Gustavson with per-thread
// dense accumulators (the layout MKL-class CPU libraries use). Exact, and
// bit-identical to the serial oracle: per-row accumulation order is the
// same regardless of thread count.
#pragma once

#include "matrix/csr.h"

namespace speck {

/// C = A*B using `threads` worker threads (0 = hardware concurrency).
Csr parallel_gustavson_spgemm(const Csr& a, const Csr& b, int threads = 0);

}  // namespace speck
