// Intel-MKL-like CPU baseline.
//
// The paper uses Intel MKL on an i7-7700 as the CPU reference; it wins for
// small multiplications (< ~15k products) where GPU launch overheads
// dominate. We model a 4-core out-of-order CPU running a parallel Gustavson
// SpGEMM: the result is exact, the time is modeled from the product count
// and memory traffic so that the GPU/CPU crossover appears at the right
// scale (Fig. 6).
#pragma once

#include "ref/spgemm_api.h"

namespace speck {

struct CpuSpec {
  int cores = 4;
  double clock_ghz = 3.6;
  /// Cycles one core spends per intermediate product (hash/heap accumulation
  /// with irregular access; memory-bound, hence far above 1).
  double cycles_per_product = 40.0;
  /// Fixed per-call overhead (threading fork/join, setup), microseconds.
  double call_overhead_us = 4.0;
  /// Bytes/s of sustained memory bandwidth shared by all cores.
  double memory_bandwidth = 30e9;
};

class MklLikeCpu final : public SpGemmAlgorithm {
 public:
  MklLikeCpu(sim::DeviceSpec device, sim::CostModel model, CpuSpec cpu = {})
      : SpGemmAlgorithm(device, model), cpu_(cpu) {}

  std::string name() const override { return "mkl"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

 private:
  CpuSpec cpu_;
};

}  // namespace speck
