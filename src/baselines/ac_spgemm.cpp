#include "baselines/ac_spgemm.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "ref/gustavson.h"

namespace speck::baselines {

SpGemmResult AcSpgemm::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);
  const auto products = static_cast<std::size_t>(in.total_products);
  const double cache = sim::reuse_cache_factor(device_, b.byte_size());

  // Chunk size: number of products a block stages and sorts in scratchpad.
  constexpr std::size_t kChunk = 2048;
  const int threads = 256;
  const std::size_t chunks = std::max<std::size_t>(1, ceil_div(products, kChunk));

  // Single fused pass: expand into scratch, sort locally (merge sort,
  // log2(chunk) rounds), compress, write chunk results.
  {
    sim::Launch launch("ac/local_esc", device_, model_);
    const double sort_rounds = std::log2(static_cast<double>(kChunk));
    std::size_t remaining = products;
    // One partial transaction per referenced row of B (the gather into the
    // chunk is segmented, like every row-wise SpGEMM).
    const std::size_t partials_per_chunk =
        static_cast<std::size_t>(a.nnz()) / chunks + 1;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      const std::size_t n = std::min(kChunk, remaining);
      remaining -= n;
      auto cost = launch.make_block(threads, 48 * 1024);
      cost.global_segmented(n, partials_per_chunk, cache);      // B columns
      cost.global_segmented(n * 2, partials_per_chunk, cache);   // B values
      cost.issued(static_cast<double>(n) * sort_rounds, 1.0);  // local sort
      cost.smem(static_cast<double>(n) * sort_rounds * 2.0);
      cost.issued(static_cast<double>(n), 2.0);  // compress scan
      cost.global_coalesced(n / 2 + 1);    // chunk output (compacted)
      cost.global_coalesced64(n / 2 + 1);
      launch.add(cost);
    }
    result.timeline.add(sim::Stage::kNumeric, launch.finish().seconds);
  }

  // Merge stage: rows whose products straddle chunk boundaries are combined;
  // the merge traffic is bounded by the output size plus one partial row per
  // chunk boundary.
  {
    sim::Launch launch("ac/merge", device_, model_);
    const auto merge_elements =
        static_cast<std::size_t>(in.c_nnz) + chunks * 64;
    constexpr std::size_t kPerBlock = 8192;
    for (std::size_t done = 0; done < merge_elements; done += kPerBlock) {
      const std::size_t n = std::min(kPerBlock, merge_elements - done);
      auto cost = launch.make_block(threads, 24 * 1024);
      cost.global_coalesced(n * 2);
      cost.global_coalesced64(n * 2);
      cost.issued(static_cast<double>(n), 2.0);
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(sim::Stage::kNumeric, launch.finish().seconds);
    }
  }

  // Temporary memory: chunk buffers are over-allocated by a generous factor
  // (paper §3.3: up to 10x over-allocation; we model 4x the product stream).
  const std::size_t temp_bytes =
      4 * products * (sizeof(index_t) + sizeof(value_t));
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
