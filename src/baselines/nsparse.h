// nsparse-like hash SpGEMM (paper Table 1, [16]).
//
// The closest competitor to spECK: two-phase (symbolic + numeric) scratchpad
// hashing with binning by intermediate-product count. Its defining
// differences from spECK, all modeled here:
//   * the analysis + binning always run (no conditional load balancing),
//   * binning inserts rows one-by-one with global atomics (pulling apart
//     neighbouring rows),
//   * a fixed 32 threads per row of B regardless of row length,
//   * no dense accumulation and no direct referencing: rows exceeding the
//     largest scratchpad map use slow global-memory hash maps.
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class Nsparse final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "nsparse"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;
};

}  // namespace speck::baselines
