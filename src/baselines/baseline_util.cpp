#include "baselines/baseline_util.h"

#include <algorithm>
#include <optional>

#include "ref/gustavson.h"

namespace speck::baselines {
namespace {

struct CacheEntry {
  // Identity of the cached pair: data pointers + sizes. Matrices are
  // identified by address, so the cache only helps while the same Csr
  // objects are reused (exactly the benchmark-suite pattern).
  const void* a_cols = nullptr;
  const void* b_cols = nullptr;
  offset_t a_nnz = -1;
  offset_t b_nnz = -1;
  BaselineInputs inputs;
  std::optional<Csr> product;
};

CacheEntry& cache() {
  static CacheEntry entry;
  return entry;
}

bool matches(const CacheEntry& entry, const Csr& a, const Csr& b) {
  return entry.a_cols == a.col_indices().data() &&
         entry.b_cols == b.col_indices().data() && entry.a_nnz == a.nnz() &&
         entry.b_nnz == b.nnz();
}

void refill(CacheEntry& entry, const Csr& a, const Csr& b) {
  entry.a_cols = a.col_indices().data();
  entry.b_cols = b.col_indices().data();
  entry.a_nnz = a.nnz();
  entry.b_nnz = b.nnz();
  entry.product.reset();

  BaselineInputs in;
  in.row_products.assign(static_cast<std::size_t>(a.rows()), 0);
  const auto b_offsets = b.row_offsets();
  for (index_t r = 0; r < a.rows(); ++r) {
    offset_t p = 0;
    for (const index_t k : a.row_cols(r)) {
      p += b_offsets[static_cast<std::size_t>(k) + 1] -
           b_offsets[static_cast<std::size_t>(k)];
    }
    in.row_products[static_cast<std::size_t>(r)] = p;
    in.total_products += p;
    in.max_row_products = std::max(in.max_row_products, p);
  }
  in.c_row_nnz = gustavson_symbolic(a, b);
  for (const index_t nnz : in.c_row_nnz) {
    in.c_nnz += nnz;
    in.max_c_row_nnz = std::max(in.max_c_row_nnz, nnz);
  }
  entry.inputs = std::move(in);
}

}  // namespace

const BaselineInputs& compute_inputs(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  CacheEntry& entry = cache();
  if (!matches(entry, a, b)) refill(entry, a, b);
  return entry.inputs;
}

const Csr& cached_product(const Csr& a, const Csr& b) {
  CacheEntry& entry = cache();
  if (!matches(entry, a, b)) refill(entry, a, b);
  if (!entry.product.has_value()) entry.product = gustavson_spgemm(a, b);
  return *entry.product;
}

void finalize_result(SpGemmResult& result, const Csr& a, const Csr& b, Csr c,
                     std::size_t temp_bytes, const sim::DeviceSpec& device) {
  const std::size_t peak =
      a.byte_size() + b.byte_size() + c.byte_size() + temp_bytes;
  if (peak > device.global_memory_bytes) {
    result.status = SpGemmStatus::kOutOfMemory;
    result.failure_reason = "temporary buffers exceed device memory";
    return;
  }
  result.peak_memory_bytes = peak;
  result.c = std::move(c);
  result.seconds = result.timeline.total_seconds();
}

}  // namespace speck::baselines
