// KokkosKernels-like portable hash SpGEMM (paper Table 1, [7]).
//
// Performance-portable two-level hashing: a small team scratchpad map backed
// by global memory. Two modeled quirks from the paper's evaluation:
//   * the output rows are returned *unsorted* (violating the CSR
//     specification and skipping the expensive sort stage),
//   * matrices whose rows exceed the portable accumulator limit fail
//     (815 of 2672 matrices in the paper's runs).
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class KokkosLike final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "kokkos"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

  /// Row-size limit above which the portable accumulator gives up.
  static constexpr offset_t kMaxRowProducts = 1 << 15;
};

}  // namespace speck::baselines
