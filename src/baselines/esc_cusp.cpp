#include "baselines/esc_cusp.h"

#include <algorithm>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "common/sorting.h"
#include "ref/gustavson.h"

namespace speck::baselines {

SpGemmResult EscCusp::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);
  const auto products = static_cast<std::size_t>(in.total_products);
  const double cache = sim::reuse_cache_factor(device_, b.byte_size());

  constexpr std::size_t kProductsPerBlock = 8192;
  const int threads = device_.max_threads_per_block;

  // Expand: write (row|col key, value) for every product.
  {
    sim::Launch launch("cusp/expand", device_, model_);
    const std::size_t blocks =
        std::max<std::size_t>(1, ceil_div(products, kProductsPerBlock));
    const std::size_t partials_per_block =
        static_cast<std::size_t>(a.nnz()) / blocks + 1;
    for (std::size_t done = 0; done < products; done += kProductsPerBlock) {
      const std::size_t n = std::min(kProductsPerBlock, products - done);
      auto cost = launch.make_block(threads, 0);
      cost.global_segmented(n, partials_per_block, cache);      // B columns
      cost.global_segmented(n * 2, partials_per_block, cache);   // B values
      cost.global_coalesced64(n);   // expanded keys
      cost.global_coalesced64(n);   // expanded values
      cost.issued(static_cast<double>(n), 3.0);
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(sim::Stage::kNumeric, launch.finish().seconds);
    }
  }

  // Sort: device radix sort over 64-bit (row,col) keys with value payload.
  const int row_bits = 64 - std::countl_zero(
      static_cast<std::uint64_t>(std::max<index_t>(a.rows(), 1)));
  const int col_bits = 64 - std::countl_zero(
      static_cast<std::uint64_t>(std::max<index_t>(b.cols(), 1)));
  const int passes = ceil_div(row_bits + col_bits, 8);
  {
    sim::Launch launch("cusp/sort", device_, model_);
    for (std::size_t done = 0; done < products; done += kProductsPerBlock) {
      const std::size_t n = std::min(kProductsPerBlock, products - done);
      auto cost = launch.make_block(threads, 32 * 1024);
      cost.global_coalesced64(n * static_cast<std::size_t>(passes) * 2);  // keys rw
      cost.global_coalesced64(n * static_cast<std::size_t>(passes) * 2);  // values rw
      cost.issued(static_cast<double>(n) * passes, 4.0);
      cost.smem(static_cast<double>(n) * passes * 2.0);
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(sim::Stage::kSorting, launch.finish().seconds);
    }
  }

  // Compress: segmented reduce-by-key.
  {
    sim::Launch launch("cusp/compress", device_, model_);
    for (std::size_t done = 0; done < products; done += kProductsPerBlock) {
      const std::size_t n = std::min(kProductsPerBlock, products - done);
      auto cost = launch.make_block(threads, 16 * 1024);
      cost.global_coalesced64(n * 2);  // read sorted pairs
      cost.issued(static_cast<double>(n), 2.0);
      launch.add(cost);
    }
    auto write_back = launch.make_block(threads, 0);
    write_back.global_coalesced(static_cast<std::size_t>(in.c_nnz));
    write_back.global_coalesced64(static_cast<std::size_t>(in.c_nnz));
    launch.add(write_back);
    result.timeline.add(sim::Stage::kNumeric, launch.finish().seconds);
  }

  // Temporary memory: double-buffered expanded (key, value) arrays.
  const std::size_t temp_bytes = 2 * products * (sizeof(key64_t) + sizeof(value_t));
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
