#include "baselines/suite.h"

#include "baselines/outer_product.h"
#include "speck/partial.h"

#include "baselines/ac_spgemm.h"
#include "baselines/bhsparse.h"
#include "baselines/cusparse_like.h"
#include "baselines/esc_cusp.h"
#include "baselines/kokkos_like.h"
#include "baselines/nsparse.h"
#include "baselines/rmerge.h"
#include "ref/mkl_like.h"
#include "speck/speck.h"

namespace speck::baselines {

std::vector<std::unique_ptr<SpGemmAlgorithm>> make_gpu_algorithms(
    const sim::DeviceSpec& device, const sim::CostModel& model) {
  std::vector<std::unique_ptr<SpGemmAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<CusparseLike>(device, model));
  algorithms.push_back(std::make_unique<AcSpgemm>(device, model));
  algorithms.push_back(std::make_unique<Nsparse>(device, model));
  algorithms.push_back(std::make_unique<RMerge>(device, model));
  algorithms.push_back(std::make_unique<BhSparse>(device, model));
  algorithms.push_back(std::make_unique<EscCusp>(device, model));
  SpeckConfig speck_config;
  speck_config.thresholds = reduced_scale_thresholds();
  algorithms.push_back(std::make_unique<Speck>(device, model, speck_config));
  algorithms.push_back(std::make_unique<KokkosLike>(device, model));
  return algorithms;
}

std::vector<std::unique_ptr<SpGemmAlgorithm>> make_all_algorithms(
    const sim::DeviceSpec& device, const sim::CostModel& model) {
  auto algorithms = make_gpu_algorithms(device, model);
  algorithms.push_back(std::make_unique<MklLikeCpu>(device, model));
  return algorithms;
}

}  // namespace speck::baselines

namespace speck::baselines {

std::unique_ptr<SpGemmAlgorithm> make_algorithm(const std::string& name,
                                                const sim::DeviceSpec& device,
                                                const sim::CostModel& model) {
  if (name == "speck") {
    SpeckConfig config;
    config.thresholds = reduced_scale_thresholds();
    return std::make_unique<Speck>(device, model, config);
  }
  if (name == "speck-partial") return std::make_unique<PartialSpeck>(device, model);
  if (name == "cusparse") return std::make_unique<CusparseLike>(device, model);
  if (name == "ac") return std::make_unique<AcSpgemm>(device, model);
  if (name == "nsparse") return std::make_unique<Nsparse>(device, model);
  if (name == "rmerge") return std::make_unique<RMerge>(device, model);
  if (name == "bhsparse") return std::make_unique<BhSparse>(device, model);
  if (name == "cusp") return std::make_unique<EscCusp>(device, model);
  if (name == "kokkos") return std::make_unique<KokkosLike>(device, model);
  if (name == "outer") return std::make_unique<OuterProduct>(device, model);
  if (name == "mkl") return std::make_unique<MklLikeCpu>(device, model);
  throw InvalidArgument("unknown algorithm: " + name);
}

std::vector<std::string> algorithm_names() {
  return {"speck", "speck-partial", "cusparse", "ac",     "nsparse", "rmerge",
          "bhsparse", "cusp",       "kokkos",   "outer",  "mkl"};
}

}  // namespace speck::baselines
