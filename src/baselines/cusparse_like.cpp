#include "baselines/cusparse_like.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "common/sorting.h"
#include "ref/gustavson.h"

namespace speck::baselines {

SpGemmResult CusparseLike::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);

  const int threads = 256;
  const double cache = sim::reuse_cache_factor(device_, b.byte_size());
  // Both phases: fixed 32 threads per row of B, one global atomic per
  // intermediate product (plus expected probing at ~50% table load).
  for (const bool numeric : {false, true}) {
    sim::Launch launch(numeric ? "cusparse/numeric" : "cusparse/symbolic", device_,
                       model_);
    constexpr int kRowsPerBlock = 8;
    for (index_t begin = 0; begin < a.rows(); begin += kRowsPerBlock) {
      const index_t end = std::min<index_t>(a.rows(), begin + kRowsPerBlock);
      auto cost = launch.make_block(threads, 4 * 1024);
      for (index_t r = begin; r < end; ++r) {
        for (const index_t k : a.row_cols(r)) {
          const auto len = static_cast<std::size_t>(b.row_length(k));
          if (len == 0) continue;
          cost.issued(static_cast<double>(ceil_div<std::size_t>(len, 32)) * 32.0, 2.0);
          cost.global_segmented(len * (numeric ? 3 : 1), 1, cache);
        }
        const auto inserts =
            static_cast<double>(in.row_products[static_cast<std::size_t>(r)]);
        cost.global_atomic(inserts * 1.5);
      }
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(numeric ? sim::Stage::kNumeric : sim::Stage::kSymbolic,
                          launch.finish().seconds);
    }
  }

  // Final sort of each row (device radix over the output).
  {
    sim::Launch launch("cusparse/sort", device_, model_);
    const auto elements = static_cast<std::size_t>(in.c_nnz);
    const int passes = radix_pass_count(static_cast<std::uint32_t>(
        std::max<index_t>(b.cols() - 1, 1)));
    constexpr std::size_t kPerBlock = 8192;
    for (std::size_t done = 0; done < elements; done += kPerBlock) {
      const std::size_t n = std::min(kPerBlock, elements - done);
      auto cost = launch.make_block(threads, 16 * 1024);
      cost.global_coalesced(n * static_cast<std::size_t>(passes) * 2);
      cost.global_coalesced64(n * static_cast<std::size_t>(passes) * 2);
      cost.issued(static_cast<double>(n) * passes, 3.0);
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(sim::Stage::kSorting, launch.finish().seconds);
    }
  }

  // Temporary memory: one tightly-sized global hash table (cuSPARSE's
  // footprint is nearly identical to spECK's in the paper's Table 3).
  const std::size_t temp_bytes = static_cast<std::size_t>(in.c_nnz) *
                                 (sizeof(index_t) + sizeof(value_t));
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
