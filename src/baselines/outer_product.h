// Outer-product SpGEMM (OuterSPACE-family) — an *extension* baseline beyond
// the paper's Table 1 taxonomy.
//
// C = sum_k col_k(A) ⊗ row_k(B): the multiplication is driven by the inner
// dimension instead of the rows of A. Each k produces |col_k(A)| * |row_k(B)|
// products that scatter across the whole output, so the method needs either
// a full expansion buffer (modeled here, ESC-style merge afterwards) or
// massive atomics. Included to contrast the row-wise formulations the paper
// studies with the column-driven alternative.
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class OuterProduct final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "outer"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;
};

}  // namespace speck::baselines
