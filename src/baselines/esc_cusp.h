// CUSP-like global Expand-Sort-Compress SpGEMM (paper Table 1, [3]).
//
// Expands every intermediate product to global memory, radix-sorts all of
// them by (row, column) and compresses duplicates. Perfect load balance and
// memory access, but cost and memory scale with the *product* count, which
// makes it uncompetitive for high-compaction matrices.
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class EscCusp final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "cusp"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;
};

}  // namespace speck::baselines
