#include "baselines/kokkos_like.h"

#include <algorithm>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "ref/gustavson.h"

namespace speck::baselines {

SpGemmResult KokkosLike::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);

  if (in.max_row_products > kMaxRowProducts) {
    result.status = SpGemmStatus::kUnsupported;
    result.failure_reason = "row exceeds the portable accumulator limit";
    return result;
  }

  const int threads = 256;
  const double cache = sim::reuse_cache_factor(device_, b.byte_size());
  constexpr std::size_t kTeamScratchEntries = 512;  // small portable map
  for (const bool numeric : {false, true}) {
    sim::Launch launch(numeric ? "kokkos/numeric" : "kokkos/symbolic", device_,
                       model_);
    for (index_t r = 0; r < a.rows(); ++r) {
      if (a.row_length(r) == 0) continue;
      auto cost = launch.make_block(threads, 16 * 1024);
      for (const index_t k : a.row_cols(r)) {
        const auto len = static_cast<std::size_t>(b.row_length(k));
        if (len == 0) continue;
        // Portable team abstraction: higher per-instruction overhead than a
        // hand-tuned CUDA kernel (weight 6).
        cost.issued(static_cast<double>(ceil_div<std::size_t>(len, 32)) * 32.0, 6.0);
        cost.global_segmented(len * (numeric ? 3 : 1), 1, cache);
      }
      const auto inserts =
          static_cast<double>(in.row_products[static_cast<std::size_t>(r)]);
      const auto unique =
          static_cast<double>(in.c_row_nnz[static_cast<std::size_t>(r)]);
      // Inserts start in the small team scratch map and overflow to the
      // global-memory backup map (chained buckets: extra probe traffic).
      const double in_scratch =
          std::min(inserts, static_cast<double>(kTeamScratchEntries));
      cost.smem_atomic(in_scratch, 2.5);
      cost.smem(inserts * 4.0);  // chained-bucket bookkeeping per insert
      cost.global_atomic((inserts - in_scratch) * 1.2);
      if (numeric) {
        cost.global_coalesced(static_cast<std::size_t>(unique));
        cost.global_coalesced64(static_cast<std::size_t>(unique));
      }
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(numeric ? sim::Stage::kNumeric : sim::Stage::kSymbolic,
                          launch.finish().seconds);
    }
  }

  // Portability-layer overhead: Kokkos dispatches several auxiliary kernels
  // per phase (initialization, pool setup, compression) and re-derives its
  // launch parameters at run time.
  result.timeline.add(sim::Stage::kOther,
                      10 * model_.kernel_launch_overhead_us * 1e-6 + 30e-6);

  // No sort pass: KokkosKernels returns unsorted columns (paper §6).
  result.sorted_output = false;

  const std::size_t temp_bytes = 2 * static_cast<std::size_t>(in.c_nnz) *
                                 (sizeof(index_t) + sizeof(value_t));
  // The comparison framework still receives sorted data so that structural
  // validation works; the sorted_output flag records the CSR violation.
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
