#include "baselines/outer_product.h"

#include <algorithm>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "common/sorting.h"
#include "matrix/csc.h"

namespace speck::baselines {

SpGemmResult OuterProduct::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);
  const auto products = static_cast<std::size_t>(in.total_products);
  const int threads = 256;
  constexpr std::size_t kPerBlock = 4096;

  // Phase 0: convert A to CSC (one full pass + scattered writes).
  {
    sim::Launch launch("outer/transpose_a", device_, model_);
    const auto nnz_a = static_cast<std::size_t>(a.nnz());
    for (std::size_t done = 0; done < std::max<std::size_t>(nnz_a, 1);
         done += kPerBlock) {
      const std::size_t n = std::min(kPerBlock, nnz_a - done);
      auto cost = launch.make_block(threads, 8 * 1024);
      cost.global_coalesced(n * 2);
      cost.global_scattered(n);  // bucket writes by column
      cost.issued(static_cast<double>(n), 2.0);
      launch.add(cost);
      if (nnz_a == 0) break;
    }
    result.timeline.add(sim::Stage::kAnalysis, launch.finish().seconds);
  }

  // Phase 1: expansion — for every k, |col_k(A)| x |row_k(B)| partial
  // products written to a global (row, col, value) buffer. Reads of A's
  // column and B's row are segmented; writes are streaming.
  {
    sim::Launch launch("outer/expand", device_, model_);
    const double cache = sim::reuse_cache_factor(device_, b.byte_size());
    for (std::size_t done = 0; done < products; done += kPerBlock) {
      const std::size_t n = std::min(kPerBlock, products - done);
      auto cost = launch.make_block(threads, 16 * 1024);
      cost.global_segmented(n, kPerBlock / 64, cache);       // A column entries
      cost.global_segmented(n, kPerBlock / 64, cache);       // B row entries
      cost.global_coalesced64(n);                            // expanded keys
      cost.global_coalesced64(n);                            // expanded values
      cost.issued(static_cast<double>(n), 3.0);
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(sim::Stage::kNumeric, launch.finish().seconds);
    }
  }

  // Phase 2: sort the expansion by (row, col) and reduce — the outer
  // formulation cannot avoid touching all products again.
  {
    sim::Launch launch("outer/merge", device_, model_);
    const int row_bits =
        64 - std::countl_zero(static_cast<std::uint64_t>(std::max<index_t>(a.rows(), 1)));
    const int col_bits =
        64 - std::countl_zero(static_cast<std::uint64_t>(std::max<index_t>(b.cols(), 1)));
    const int passes = ceil_div(row_bits + col_bits, 8);
    for (std::size_t done = 0; done < products; done += kPerBlock) {
      const std::size_t n = std::min(kPerBlock, products - done);
      auto cost = launch.make_block(threads, 32 * 1024);
      cost.global_coalesced64(n * static_cast<std::size_t>(passes) * 2);
      cost.global_coalesced64(n * static_cast<std::size_t>(passes) * 2);
      cost.issued(static_cast<double>(n) * passes, 4.0);
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(sim::Stage::kSorting, launch.finish().seconds);
    }
  }

  // Exercise the real CSC conversion so the column view is genuinely built.
  const Csc a_csc = csr_to_csc(a);
  SPECK_ASSERT(a_csc.nnz() == a.nnz(), "CSC conversion lost entries");

  // Temporary memory: CSC copy of A + double-buffered expansion.
  const std::size_t temp_bytes =
      a_csc.byte_size() + 2 * products * (sizeof(key64_t) + sizeof(value_t));
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
