// cuSPARSE-like generic hash SpGEMM (paper Table 1, [17]).
//
// Two-phase hashing with the accumulators resident in *global* memory and a
// fixed kernel configuration: robust (never fails, low memory — Table 3
// shows 1.01x spECK's footprint) but slow across the board because every
// insert is a global atomic.
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class CusparseLike final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "cusparse"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;
};

}  // namespace speck::baselines
