// AC-SpGEMM-like local Expand-Sort-Compress (paper Table 1, [19]).
//
// Splits the product stream into fixed-size chunks handled entirely in
// scratchpad (local sort + local compress), then merges chunk results that
// share output rows. Adaptive local load balancing gives near-perfect
// thread utilization; temporary memory is over-allocated generously
// (the authors leave exact estimates to future work).
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class AcSpgemm final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "ac"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;
};

}  // namespace speck::baselines
