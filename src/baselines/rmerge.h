// RMerge-like iterative row merging (paper Table 1, [10]).
//
// Decomposes A into factors whose rows reference at most `kMergeWidth` rows
// of B and multiplies iteratively, merging sorted lists. Excellent for very
// thin, uniform matrices (one or two rounds); suffers from equally-sized
// temporary arrays when row lengths vary and from multiple full passes over
// the intermediate data when rows of A are long.
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class RMerge final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "rmerge"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;
};

}  // namespace speck::baselines
