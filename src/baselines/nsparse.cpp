#include "baselines/nsparse.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "ref/gustavson.h"

namespace speck::baselines {
namespace {

/// nsparse's bin ladder: scratchpad hash capacities with matching block
/// sizes; rows above the largest capacity use global-memory hash maps.
struct NsparseBin {
  offset_t capacity;
  int threads;
};
constexpr std::array<NsparseBin, 7> kBins = {{{32, 4},  // PWARP: 4 threads/row
                                              {512, 64},
                                              {1024, 128},
                                              {2048, 256},
                                              {4096, 512},
                                              {8192, 1024},
                                              {0, 1024}}};  // global bin

/// Rows sharing one block in the PWARP bin (256 threads / 4 per row).
constexpr int kPwarpRowsPerBlock = 64;

std::size_t bin_for(offset_t demand) {
  for (std::size_t i = 0; i + 1 < kBins.size(); ++i) {
    if (demand <= kBins[i].capacity) return i;
  }
  return kBins.size() - 1;
}

/// Expected linear-probing steps per insert at the given final load factor.
double probe_factor(double load) {
  const double clamped = std::min(load, 0.97);
  return 0.5 * (1.0 + 1.0 / (1.0 - clamped));
}

/// Charges the fixed-group-size sweep over the B rows referenced by row r
/// (g = 32 for all regular bins, 4 for the PWARP bin — never adapted to the
/// row length, which is nsparse's Fig. 13 weakness).
void charge_sweep(sim::BlockCost& cost, const Csr& a, const Csr& b, index_t r,
                  bool numeric, int group_size, double cache) {
  for (const index_t k : a.row_cols(r)) {
    const auto len = static_cast<std::size_t>(b.row_length(k));
    if (len == 0) continue;
    const std::size_t iterations =
        ceil_div<std::size_t>(len, static_cast<std::size_t>(group_size));
    cost.issued(static_cast<double>(iterations * group_size), 2.0);
    cost.global_segmented(len, 1, cache);
    if (numeric) cost.global_segmented(len * 2, 1, cache);
  }
  cost.global_coalesced(a.row_cols(r).size());
  if (numeric) cost.global_coalesced64(a.row_cols(r).size());
}

}  // namespace

SpGemmResult Nsparse::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);
  const auto rows = static_cast<std::size_t>(a.rows());
  const double cache = sim::reuse_cache_factor(device_, b.byte_size());

  // Analysis: count products per row (always runs).
  {
    sim::Launch launch("nsparse/count", device_, model_);
    const int threads = device_.max_threads_per_block;
    const auto nnz_a = static_cast<std::size_t>(a.nnz());
    for (std::size_t done = 0; done < std::max<std::size_t>(nnz_a, 1);
         done += static_cast<std::size_t>(threads)) {
      const std::size_t n =
          std::min(static_cast<std::size_t>(threads), nnz_a - done);
      auto cost = launch.make_block(threads, 4 * 1024);
      cost.global_coalesced(n);
      cost.global_scattered(2 * n);
      cost.smem_atomic(static_cast<double>(n));
      cost.issued(static_cast<double>(threads), 4.0);
      launch.add(cost);
      if (nnz_a == 0) break;
    }
    result.timeline.add(sim::Stage::kAnalysis, launch.finish().seconds);
  }

  // One symbolic and one numeric phase; both re-run binning with per-row
  // global atomics.
  offset_t global_rows = 0;
  offset_t global_row_products = 0;
  offset_t global_rows_products_total = 0;
  for (const bool numeric : {false, true}) {
    // Binning.
    {
      sim::Launch launch(numeric ? "nsparse/bin_numeric" : "nsparse/bin_symbolic",
                         device_, model_);
      const int threads = device_.max_threads_per_block;
      for (std::size_t done = 0; done < std::max<std::size_t>(rows, 1);
           done += static_cast<std::size_t>(threads)) {
        const std::size_t n = std::min(static_cast<std::size_t>(threads), rows - done);
        auto cost = launch.make_block(threads, 0);
        cost.global_coalesced(n);
        cost.global_atomic(static_cast<double>(n));  // one atomic per row
        cost.global_scattered(n);                    // scattered bin writes
        launch.add(cost);
        if (rows == 0) break;
      }
      result.timeline.add(numeric ? sim::Stage::kNumericLoadBalance
                                  : sim::Stage::kSymbolicLoadBalance,
                          launch.finish().seconds);
    }

    // Hash kernels, one launch per bin. Regular bins run one row per block;
    // the PWARP bin packs 64 tiny rows into a 256-thread block with 4
    // threads per row.
    for (std::size_t bin = 0; bin < kBins.size(); ++bin) {
      sim::Launch launch((numeric ? "nsparse/numeric_bin" : "nsparse/symbolic_bin") +
                             std::to_string(bin),
                         device_, model_);
      const NsparseBin& spec = kBins[bin];
      const bool pwarp_bin = bin == 0;
      const bool global_bin = bin + 1 == kBins.size();
      const int block_threads = pwarp_bin ? 256 : spec.threads;
      const int rows_per_block = pwarp_bin ? kPwarpRowsPerBlock : 1;
      const int group_size = pwarp_bin ? 4 : 32;
      const std::size_t entry_bytes =
          numeric ? sizeof(key32_t) + sizeof(value_t) : sizeof(key32_t);
      const std::size_t smem = std::min<std::size_t>(
          global_bin ? 0
                     : static_cast<std::size_t>(spec.capacity) * entry_bytes *
                           static_cast<std::size_t>(rows_per_block),
          device_.dynamic_scratchpad_per_block);

      auto cost = launch.make_block(block_threads, smem);
      int rows_in_block = 0;
      const auto flush = [&]() {
        if (rows_in_block > 0) launch.add(cost);
        cost = launch.make_block(block_threads, smem);
        rows_in_block = 0;
      };
      for (index_t r = 0; r < a.rows(); ++r) {
        const offset_t demand =
            numeric ? in.c_row_nnz[static_cast<std::size_t>(r)]
                    : in.row_products[static_cast<std::size_t>(r)];
        if (demand == 0 && bin != 0) continue;
        if (bin_for(demand) != bin) continue;
        charge_sweep(cost, a, b, r, numeric, group_size, cache);

        const auto inserts =
            static_cast<double>(in.row_products[static_cast<std::size_t>(r)]);
        const auto unique =
            static_cast<double>(in.c_row_nnz[static_cast<std::size_t>(r)]);
        if (global_bin) {
          cost.global_atomic(inserts * 1.5);
          if (!numeric) {
            ++global_rows;
            global_rows_products_total +=
                in.row_products[static_cast<std::size_t>(r)];
            global_row_products =
                std::max(global_row_products,
                         in.row_products[static_cast<std::size_t>(r)]);
          }
        } else {
          const double load =
              unique / static_cast<double>(std::max<offset_t>(spec.capacity, 1));
          cost.smem_atomic(inserts, probe_factor(load));
          // Extraction scans this row's map.
          cost.issued(static_cast<double>(spec.capacity));
          cost.smem(static_cast<double>(spec.capacity));
        }
        if (numeric) {
          // In-kernel bitonic sort of the row result.
          const double n = std::max(unique, 1.0);
          const double rounds = std::log2(n) * (std::log2(n) + 1.0) / 2.0 + 1.0;
          cost.issued(n * rounds);
          cost.smem(n * rounds);
          cost.global_coalesced(static_cast<std::size_t>(unique));
          cost.global_coalesced64(static_cast<std::size_t>(unique));
        } else {
          cost.global_coalesced(1);  // row count
        }
        if (++rows_in_block >= rows_per_block) flush();
      }
      flush();
      if (launch.block_count() > 0) {
        result.timeline.add(numeric ? sim::Stage::kNumeric : sim::Stage::kSymbolic,
                            launch.finish().seconds);
      }
    }
  }

  // Temporary memory: bin lists and product counts for both phases, plus a
  // global hash table allocated for *every* global-bin row simultaneously —
  // the coarse upper-bound sizing the paper contrasts with spECK's
  // concurrency-aware pool ("better analysis of the requirements for global
  // hashing", §6.1).
  const std::size_t temp_bytes =
      3 * rows * sizeof(index_t) +
      static_cast<std::size_t>(
          next_pow2(static_cast<std::uint64_t>(
              std::max<offset_t>(global_rows_products_total, 1)))) *
          (global_rows > 0 ? 1 : 0) * (sizeof(key32_t) + sizeof(value_t));
  (void)global_row_products;
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
