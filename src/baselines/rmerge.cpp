#include "baselines/rmerge.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "ref/gustavson.h"

namespace speck::baselines {

SpGemmResult RMerge::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);

  // Merge width: rows of B merged per thread group and round.
  constexpr offset_t kMergeWidth = 32;
  index_t max_nnz_a = 0;
  for (index_t r = 0; r < a.rows(); ++r) max_nnz_a = std::max(max_nnz_a, a.row_length(r));
  const int rounds = std::max(
      1, static_cast<int>(std::ceil(std::log(std::max<double>(max_nnz_a, 2)) /
                                    std::log(static_cast<double>(kMergeWidth)))));

  // Equal-size temporary rows: every row's buffer is padded to the power of
  // two covering its product count — the utilization penalty the paper
  // attributes to merging approaches.
  std::size_t padded_elements = 0;
  for (const offset_t p : in.row_products) {
    padded_elements +=
        static_cast<std::size_t>(next_pow2(static_cast<std::uint64_t>(std::max<offset_t>(p, 1))));
  }

  const int threads = 256;
  constexpr std::size_t kPerBlock = 4096;
  for (int round = 0; round < rounds; ++round) {
    sim::Launch launch("rmerge/round" + std::to_string(round), device_, model_);
    // Every round streams the padded intermediate through the merge network.
    // The first round gathers the rows of B (segmented); later rounds read
    // the padded intermediate, which is laid out contiguously.
    const std::size_t blocks =
        std::max<std::size_t>(1, ceil_div(padded_elements, kPerBlock));
    // Round 0 gathers the rows of B (one segment per NZ of A); later rounds
    // still jump between the per-row padded arrays (one segment per row).
    const std::size_t partials_per_block =
        (round == 0 ? static_cast<std::size_t>(a.nnz())
                    : static_cast<std::size_t>(a.rows())) /
            blocks +
        1;
    for (std::size_t done = 0; done < padded_elements; done += kPerBlock) {
      const std::size_t n = std::min(kPerBlock, padded_elements - done);
      auto cost = launch.make_block(threads, 32 * 1024);
      // Entries are 16-byte (padded 64-bit key + 64-bit value) so the merge
      // network can move them as aligned pairs. Every round is two-phase
      // (partition, then merge), touching the input twice.
      const double cache =
          round == 0 ? sim::reuse_cache_factor(device_, b.byte_size()) : 1.0;
      cost.global_segmented(n * 4, 2 * partials_per_block + 1, cache);  // keys x2
      cost.global_segmented(n * 4, 2 * partials_per_block + 1, cache);  // vals x2
      cost.issued(static_cast<double>(n) *
                      std::log2(static_cast<double>(kMergeWidth)),
                  4.5);  // merge network (lane-serialized compares + selects)
      cost.smem(static_cast<double>(n) * 4.0);
      cost.global_coalesced64(n);  // keys out (padded)
      cost.global_coalesced64(n);  // values out
      launch.add(cost);
    }
    if (launch.block_count() > 0) {
      result.timeline.add(sim::Stage::kNumeric, launch.finish().seconds);
    }
  }

  // Preprocessing: building the decomposition streams A once per round.
  {
    sim::Launch launch("rmerge/decompose", device_, model_);
    const auto nnz_a = static_cast<std::size_t>(a.nnz());
    for (std::size_t done = 0; done < std::max<std::size_t>(nnz_a, 1);
         done += kPerBlock) {
      const std::size_t n = std::min(kPerBlock, nnz_a - done);
      auto cost = launch.make_block(threads, 8 * 1024);
      cost.global_coalesced(n * static_cast<std::size_t>(rounds));
      cost.issued(static_cast<double>(n) * rounds, 2.0);
      launch.add(cost);
      if (nnz_a == 0) break;
    }
    result.timeline.add(sim::Stage::kAnalysis, launch.finish().seconds);
  }

  // Temporary memory: double-buffered padded intermediate.
  const std::size_t temp_bytes =
      2 * padded_elements * (sizeof(index_t) + sizeof(value_t));
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
