#include "baselines/bhsparse.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "common/bit_utils.h"
#include "ref/gustavson.h"

namespace speck::baselines {

SpGemmResult BhSparse::multiply(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  SpGemmResult result;
  const BaselineInputs& in = compute_inputs(a, b);
  const auto rows = static_cast<std::size_t>(a.rows());

  // Analysis + binning by upper-bounded NNZ (products), with per-row atomics.
  {
    sim::Launch launch("bhsparse/bin", device_, model_);
    const int threads = device_.max_threads_per_block;
    for (std::size_t done = 0; done < std::max<std::size_t>(rows, 1);
         done += static_cast<std::size_t>(threads)) {
      const std::size_t n = std::min(static_cast<std::size_t>(threads), rows - done);
      auto cost = launch.make_block(threads, 2 * 1024);
      cost.global_coalesced(n);
      cost.global_scattered(2 * n);  // row offset pairs of A and B
      cost.global_atomic(static_cast<double>(n));
      cost.global_scattered(n);
      launch.add(cost);
      if (rows == 0) break;
    }
    result.timeline.add(sim::Stage::kAnalysis, launch.finish().seconds);
  }

  const double cache = sim::reuse_cache_factor(device_, b.byte_size());
  // Compute kernels: dispatch per row by product count.
  constexpr offset_t kHeapLimit = 64;      // heap method in registers/scratch
  constexpr offset_t kBitonicLimit = 2048; // bitonic ESC in scratchpad
  sim::Launch heap_launch("bhsparse/heap", device_, model_);
  sim::Launch bitonic_launch("bhsparse/bitonic", device_, model_);
  sim::Launch merge_launch("bhsparse/global_merge", device_, model_);
  for (index_t r = 0; r < a.rows(); ++r) {
    const offset_t products = in.row_products[static_cast<std::size_t>(r)];
    const double p = static_cast<double>(std::max<offset_t>(products, 1));
    const double nnz_a_row = std::max<double>(a.row_length(r), 1.0);
    if (products <= kHeapLimit) {
      auto cost = heap_launch.make_block(64, 2 * 1024);
      cost.global_segmented(static_cast<std::size_t>(products) * 3,
                            static_cast<std::size_t>(nnz_a_row), cache);
      // Heap pops serialize within the cooperating threads (weight 6).
      cost.issued(p * std::log2(nnz_a_row + 1.0), 6.0);
      cost.global_coalesced(static_cast<std::size_t>(
          in.c_row_nnz[static_cast<std::size_t>(r)]));
      heap_launch.add(cost);
    } else if (products <= kBitonicLimit) {
      auto cost = bitonic_launch.make_block(256, 32 * 1024);
      cost.global_segmented(static_cast<std::size_t>(products) * 3,
                            static_cast<std::size_t>(nnz_a_row), cache);
      const double rounds = std::log2(p) * (std::log2(p) + 1.0) / 2.0;
      cost.issued(p * rounds, 1.0);
      cost.smem(p * rounds);
      cost.global_coalesced(static_cast<std::size_t>(
          in.c_row_nnz[static_cast<std::size_t>(r)]));
      bitonic_launch.add(cost);
    } else {
      // Global merge path: log2(nnz_a) full passes over the row's products
      // in global memory, with a re-allocation check between passes.
      auto cost = merge_launch.make_block(256, 16 * 1024);
      const double passes = std::max(1.0, std::log2(nnz_a_row));
      cost.global_coalesced(static_cast<std::size_t>(p * passes * 2.0));
      cost.global_coalesced64(static_cast<std::size_t>(p * passes * 2.0));
      cost.issued(p * passes, 2.0);
      cost.global_atomic(passes);
      merge_launch.add(cost);
    }
  }
  for (sim::Launch* launch : {&heap_launch, &bitonic_launch, &merge_launch}) {
    if (launch->block_count() > 0) {
      result.timeline.add(sim::Stage::kNumeric, launch->finish().seconds);
    }
  }
  // bhSPARSE dispatches one kernel per occupied size bin (up to 37 bins in
  // the original implementation) plus the memory re-allocation checks.
  result.timeline.add(sim::Stage::kOther,
                      16 * model_.kernel_launch_overhead_us * 1e-6);

  // Temporary memory: per-row upper-bound buffers for the ESC/merge paths.
  std::size_t temp_elements = 0;
  for (const offset_t p : in.row_products) {
    if (p > kHeapLimit) temp_elements += static_cast<std::size_t>(p);
  }
  const std::size_t temp_bytes =
      2 * temp_elements * (sizeof(index_t) + sizeof(value_t)) +
      2 * rows * sizeof(index_t);
  finalize_result(result, a, b, Csr(cached_product(a, b)), temp_bytes, device_);
  return result;
}

}  // namespace speck::baselines
