// Shared structural quantities used by the baseline cost models.
#pragma once

#include <vector>

#include "matrix/csr.h"
#include "ref/spgemm_api.h"

namespace speck::baselines {

struct BaselineInputs {
  std::vector<offset_t> row_products;  ///< products per row of A
  offset_t total_products = 0;
  offset_t max_row_products = 0;
  std::vector<index_t> c_row_nnz;      ///< exact NNZ per row of C
  offset_t c_nnz = 0;
  index_t max_c_row_nnz = 0;
};

/// Computes products per row and the exact symbolic result (the baselines
/// charge their own modeled cost for obtaining these on the device).
///
/// Results are memoized on the identity of (a, b): benchmark harnesses run
/// eight algorithms on the same matrix pair back to back, and the structural
/// quantities are identical for all of them. The cache holds one entry and
/// is invalidated whenever a different pair is seen.
const BaselineInputs& compute_inputs(const Csr& a, const Csr& b);

/// The exact product C = A*B, memoized alongside compute_inputs.
const Csr& cached_product(const Csr& a, const Csr& b);

/// Fills the exact result and the memory fields common to every baseline.
/// `temp_bytes` is the algorithm's peak temporary allocation.
void finalize_result(SpGemmResult& result, const Csr& a, const Csr& b,
                     Csr c, std::size_t temp_bytes,
                     const sim::DeviceSpec& device);

}  // namespace speck::baselines
