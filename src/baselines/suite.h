// Assembly of the full comparison suite (paper Table 3 column order).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ref/spgemm_api.h"

namespace speck::baselines {

/// All eight algorithms from the paper's evaluation, bound to one device:
/// cusparse, ac, nsparse, rmerge, bhsparse, speck, kokkos, mkl.
std::vector<std::unique_ptr<SpGemmAlgorithm>> make_all_algorithms(
    const sim::DeviceSpec& device, const sim::CostModel& model);

/// Only the GPU competitors (excludes the MKL-like CPU baseline).
std::vector<std::unique_ptr<SpGemmAlgorithm>> make_gpu_algorithms(
    const sim::DeviceSpec& device, const sim::CostModel& model);

}  // namespace speck::baselines

namespace speck::baselines {

/// Constructs one algorithm by name ("speck", "nsparse", "ac", "rmerge",
/// "bhsparse", "cusp", "cusparse", "kokkos", "outer", "mkl",
/// "speck-partial"). Throws InvalidArgument for unknown names.
std::unique_ptr<SpGemmAlgorithm> make_algorithm(const std::string& name,
                                                const sim::DeviceSpec& device,
                                                const sim::CostModel& model);

/// Names accepted by make_algorithm.
std::vector<std::string> algorithm_names();

}  // namespace speck::baselines
