// bhSPARSE-like hybrid SpGEMM (paper Table 1, [14]).
//
// Bins the rows of C by upper-bounded NNZ and dispatches: heap method for
// short rows, bitonic ESC in scratchpad for medium rows, and an iterative
// global-memory merge with buffer re-allocation for long rows. Binning uses
// per-row atomics; the long-row path is the weakness the paper's Table 3
// numbers (t/t_b = 13.1) reflect.
#pragma once

#include "ref/spgemm_api.h"

namespace speck::baselines {

class BhSparse final : public SpGemmAlgorithm {
 public:
  using SpGemmAlgorithm::SpGemmAlgorithm;
  std::string name() const override { return "bhsparse"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;
};

}  // namespace speck::baselines
