#include "gen/corpus.h"

#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"

namespace speck::gen {
namespace {

CorpusEntry square(std::string name, Csr a) {
  CorpusEntry e;
  e.name = std::move(name);
  e.b = a;
  e.a = std::move(a);
  e.square = true;
  return e;
}

CorpusEntry rectangular(std::string name, Csr a) {
  CorpusEntry e;
  e.name = std::move(name);
  e.b = transpose(a);
  e.a = std::move(a);
  e.square = false;
  return e;
}

}  // namespace

offset_t CorpusEntry::products() const { return count_products(a, b); }

std::vector<CorpusEntry> common_corpus() {
  std::vector<CorpusEntry> corpus;
  // webbase: web graph, power-law rows with strong hubs.
  corpus.push_back(square("webbase", power_law(20000, 20000, 3, 1.7, 2000, 11)));
  // hugebubbles: enormous near-uniform 2D mesh (3 NZ/row).
  corpus.push_back(square("hugebubbles", stencil_2d(260, 200)));
  // mario002: banded FEM matrix with short rows.
  corpus.push_back(square("mario002", banded(40000, 40, 4, 13)));
  // stat96v2: rectangular LP constraint matrix, C = A*Aᵀ, very short B rows.
  corpus.push_back(rectangular("stat96v2", rectangular_lp(4000, 130000, 70, 17)));
  // email-Enron: social graph, heavy-tailed degrees.
  corpus.push_back(square("email-Enron", power_law(6000, 6000, 10, 1.8, 1500, 19)));
  // cage13: DNA electrophoresis; regular short rows with moderate coupling.
  corpus.push_back(square("cage13", banded(24000, 400, 8, 23)));
  // 144: 3D FEM mesh, ~14 NZ/row.
  corpus.push_back(square("144", banded(16000, 600, 14, 29)));
  // poisson3Da: 3D Poisson problem, 27-point coupling.
  corpus.push_back(square("poisson3Da", stencil_3d(13)));
  // QCD: lattice QCD, uniform 39 NZ/row, small and dense-ish.
  corpus.push_back(square("QCD", banded(3000, 700, 32, 31)));
  // harbor: coastal FEM model, long rows (~50 NZ/row).
  corpus.push_back(square("harbor", banded(4000, 800, 44, 37)));
  // TSC_OPF: optimal power flow, dense diagonal blocks -> huge compaction.
  corpus.push_back(square("TSC_OPF", block_diagonal(8, 100, 0.95, 41)));
  return corpus;
}

std::vector<CorpusEntry> evaluation_collection(int scale) {
  SPECK_REQUIRE(scale >= 1, "scale must be >= 1");
  std::vector<CorpusEntry> corpus;
  std::uint64_t seed = 1000;
  const auto s = static_cast<index_t>(scale);

  // Tiny matrices: below the GPU/CPU crossover, where the paper's Fig. 6
  // has Intel MKL winning (356 of its 363 wins are here).
  for (const index_t rows : {60, 120, 240}) {
    for (const index_t deg : {2, 4}) {
      corpus.push_back(square("tiny_r" + std::to_string(rows) + "_d" +
                                  std::to_string(deg),
                              random_uniform(rows * s, rows * s, deg, ++seed)));
    }
  }
  // Uniform random matrices across sizes and densities. Product counts are
  // capped so a full-suite sweep stays laptop-friendly.
  constexpr offset_t kMaxProducts = 12'000'000;
  for (const index_t rows : {300, 1000, 3000, 10000, 30000}) {
    for (const index_t deg : {2, 4, 8, 16, 32}) {
      if (static_cast<offset_t>(rows) * deg * deg > kMaxProducts) continue;
      corpus.push_back(square("uniform_r" + std::to_string(rows) + "_d" +
                                  std::to_string(deg),
                              random_uniform(rows * s, rows * s, deg, ++seed)));
    }
  }
  // Banded / FEM-like locality.
  for (const index_t rows : {1000, 5000, 20000, 60000}) {
    for (const index_t deg : {3, 6, 12, 24}) {
      if (static_cast<offset_t>(rows) * deg * deg > kMaxProducts) continue;
      corpus.push_back(square("banded_r" + std::to_string(rows) + "_d" +
                                  std::to_string(deg),
                              banded(rows * s, std::max<index_t>(8, rows / 100),
                                     deg, ++seed)));
    }
  }
  // Densely filled bands: high compaction factors (the SuiteSparse average
  // is ~7) and dense output rows — hashing/dense-accumulation territory.
  for (const index_t rows : {2000, 8000, 30000}) {
    for (const index_t deg : {8, 16, 32}) {
      corpus.push_back(square("denseband_r" + std::to_string(rows) + "_d" +
                                  std::to_string(deg),
                              banded(rows * s, std::max<index_t>(4, deg * 3 / 4),
                                     deg, ++seed)));
    }
  }
  // Regular grids.
  for (const index_t n : {16, 40, 90, 160}) {
    corpus.push_back(square("grid2d_" + std::to_string(n),
                            stencil_2d(n * s, n * s)));
  }
  for (const index_t n : {6, 10, 14}) {
    corpus.push_back(square("grid3d_" + std::to_string(n), stencil_3d(n * s)));
  }
  // Scale-free graphs with varying skew.
  for (const index_t rows : {1000, 4000, 16000}) {
    for (const double alpha : {1.6, 2.0, 2.5}) {
      corpus.push_back(square(
          "powerlaw_r" + std::to_string(rows) + "_a" + std::to_string(alpha),
          power_law(rows * s, rows * s, 6, alpha, rows / 4, ++seed)));
    }
  }
  // R-MAT graphs.
  for (const int sc : {9, 11, 13}) {
    corpus.push_back(square("rmat_" + std::to_string(sc),
                            rmat(sc, 8, 0.45, 0.22, 0.22, ++seed)));
  }
  // Block-diagonal with dense blocks (high compaction).
  for (const index_t blk : {50, 100, 200}) {
    corpus.push_back(square("blockdiag_" + std::to_string(blk),
                            block_diagonal(8, blk, 0.8, ++seed)));
  }
  // Rectangular LP-like (multiplied as A*Aᵀ).
  for (const index_t rows : {500, 2000, 8000}) {
    corpus.push_back(rectangular("lp_r" + std::to_string(rows),
                                 rectangular_lp(rows * s, rows * 16, 24, ++seed)));
  }
  // Single-entry-heavy matrices (direct-referencing path).
  for (const double frac : {0.5, 0.9}) {
    corpus.push_back(square("single_" + std::to_string(static_cast<int>(frac * 100)),
                            single_entry_mix(20000 * s, 20000 * s, frac, 16, ++seed)));
  }
  // Strongly skewed row lengths (binning pays off).
  for (const index_t heavy : {256, 1024, 2048}) {
    corpus.push_back(square(
        "skewed_h" + std::to_string(heavy),
        skewed_rows(6000 * s, 6000 * s, 0.01, heavy, 3, ++seed)));
  }
  return corpus;
}

std::vector<CorpusEntry> test_corpus() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(square("tiny_uniform", random_uniform(60, 60, 4, 101)));
  corpus.push_back(square("small_uniform", random_uniform(500, 500, 8, 103)));
  corpus.push_back(square("small_banded", banded(400, 12, 5, 107)));
  corpus.push_back(square("grid2d", stencil_2d(20, 17)));
  corpus.push_back(square("grid3d", stencil_3d(6)));
  corpus.push_back(square("powerlaw", power_law(300, 300, 6, 1.8, 80, 109)));
  corpus.push_back(square("rmat", rmat(8, 6, 0.5, 0.2, 0.2, 113)));
  corpus.push_back(square("blockdiag", block_diagonal(5, 40, 0.7, 127)));
  corpus.push_back(rectangular("rect_lp", rectangular_lp(120, 1500, 12, 131)));
  corpus.push_back(square("single_rows", single_entry_mix(400, 400, 0.8, 12, 137)));
  corpus.push_back(square("skewed", skewed_rows(600, 600, 0.02, 300, 3, 139)));
  corpus.push_back(square("identity", Csr::identity(64)));
  corpus.push_back(square("empty", Csr::zeros(32, 32)));
  return corpus;
}

}  // namespace speck::gen
