#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/prng.h"
#include "matrix/coo.h"

namespace speck::gen {
namespace {

value_t random_value(Xoshiro256& rng) { return rng.next_double(0.1, 1.0); }

/// Adds `count` distinct random entries within [col_lo, col_hi] to row r.
void add_row_uniform(Coo& coo, Xoshiro256& rng, index_t r, index_t col_lo,
                     index_t col_hi, index_t count) {
  const std::int64_t universe = static_cast<std::int64_t>(col_hi) - col_lo + 1;
  const std::int64_t n = std::min<std::int64_t>(count, universe);
  if (n <= 0) return;
  for (const std::int64_t c : sample_distinct_sorted(rng, universe, n)) {
    coo.add(r, col_lo + static_cast<index_t>(c), random_value(rng));
  }
}

}  // namespace

Csr random_uniform(index_t rows, index_t cols, index_t nnz_per_row,
                   std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo coo(rows, cols);
  coo.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(nnz_per_row));
  for (index_t r = 0; r < rows; ++r) {
    add_row_uniform(coo, rng, r, 0, cols - 1, nnz_per_row);
  }
  return coo.to_csr();
}

Csr banded(index_t n, index_t half_bandwidth, index_t nnz_per_row,
           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo coo(n, n);
  for (index_t r = 0; r < n; ++r) {
    const index_t lo = std::max<index_t>(0, r - half_bandwidth);
    const index_t hi = std::min<index_t>(n - 1, r + half_bandwidth);
    add_row_uniform(coo, rng, r, lo, hi, nnz_per_row);
    coo.add(r, r, random_value(rng) + 1.0);  // strong diagonal
  }
  return coo.to_csr();
}

Csr stencil_2d(index_t nx, index_t ny) {
  Coo coo(nx * ny, nx * ny);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      coo.add(i, i, 4.0);
      if (x > 0) coo.add(i, i - 1, -1.0);
      if (x + 1 < nx) coo.add(i, i + 1, -1.0);
      if (y > 0) coo.add(i, i - nx, -1.0);
      if (y + 1 < ny) coo.add(i, i + nx, -1.0);
    }
  }
  return coo.to_csr();
}

Csr stencil_3d(index_t n) {
  Coo coo(n * n * n, n * n * n);
  for (index_t z = 0; z < n; ++z) {
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        const index_t i = (z * n + y) * n + x;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= n || yy < 0 || yy >= n || zz < 0 || zz >= n) continue;
              const index_t j = (zz * n + yy) * n + xx;
              coo.add(i, j, i == j ? 26.0 : -1.0);
            }
          }
        }
      }
    }
  }
  return coo.to_csr();
}

Csr power_law(index_t rows, index_t cols, index_t avg_degree, double alpha,
              index_t max_degree, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo coo(rows, cols);
  // Degrees from a truncated power law, rescaled to hit the average.
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  double total = 0.0;
  for (auto& d : degrees) {
    d = static_cast<index_t>(rng.next_power_law(max_degree, alpha));
    total += d;
  }
  const double scale =
      total > 0.0 ? static_cast<double>(avg_degree) * rows / total : 1.0;
  // Column popularity: columns near 0 are hubs (quadratic skew).
  for (index_t r = 0; r < rows; ++r) {
    const auto want = static_cast<index_t>(std::clamp<double>(
        std::round(degrees[static_cast<std::size_t>(r)] * scale), 1.0,
        static_cast<double>(std::min(max_degree, cols))));
    for (index_t i = 0; i < want; ++i) {
      const double u = rng.next_double();
      const auto c = static_cast<index_t>(u * u * (cols - 1));
      coo.add(r, c, random_value(rng));
    }
  }
  return coo.to_csr();
}

Csr rmat(int scale, index_t edges_per_vertex, double a, double b, double c,
         std::uint64_t seed) {
  SPECK_REQUIRE(scale >= 1 && scale < 30, "rmat scale out of range");
  SPECK_REQUIRE(a + b + c <= 1.0, "rmat probabilities must sum to <= 1");
  Xoshiro256 rng(seed);
  const index_t n = index_t{1} << scale;
  Coo coo(n, n);
  const auto edges = static_cast<std::int64_t>(n) * edges_per_vertex;
  for (std::int64_t e = 0; e < edges; ++e) {
    index_t row = 0, col = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double u = rng.next_double();
      row <<= 1;
      col <<= 1;
      if (u < a) {
        // top-left quadrant
      } else if (u < a + b) {
        col |= 1;
      } else if (u < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    coo.add(row, col, random_value(rng));
  }
  return coo.to_csr();
}

Csr block_diagonal(index_t blocks, index_t block_size, double density,
                   std::uint64_t seed) {
  SPECK_REQUIRE(density > 0.0 && density <= 1.0, "density must be in (0,1]");
  Xoshiro256 rng(seed);
  const index_t n = blocks * block_size;
  Coo coo(n, n);
  for (index_t blk = 0; blk < blocks; ++blk) {
    const index_t base = blk * block_size;
    for (index_t r = 0; r < block_size; ++r) {
      const auto want = static_cast<index_t>(
          std::max(1.0, std::round(density * block_size)));
      add_row_uniform(coo, rng, base + r, base, base + block_size - 1, want);
    }
  }
  return coo.to_csr();
}

Csr rectangular_lp(index_t rows, index_t cols, index_t nnz_per_row,
                   std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    add_row_uniform(coo, rng, r, 0, cols - 1, nnz_per_row);
  }
  return coo.to_csr();
}

Csr single_entry_mix(index_t rows, index_t cols, double single_fraction,
                     index_t long_row_nnz, std::uint64_t seed) {
  SPECK_REQUIRE(single_fraction >= 0.0 && single_fraction <= 1.0,
                "single_fraction must be in [0,1]");
  Xoshiro256 rng(seed);
  Coo coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    if (rng.next_double() < single_fraction) {
      coo.add(r, static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols))),
              random_value(rng));
    } else {
      add_row_uniform(coo, rng, r, 0, cols - 1, long_row_nnz);
    }
  }
  return coo.to_csr();
}

Csr skewed_rows(index_t rows, index_t cols, double heavy_fraction,
                index_t heavy_nnz, index_t light_nnz, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    const bool heavy = rng.next_double() < heavy_fraction;
    add_row_uniform(coo, rng, r, 0, cols - 1, heavy ? heavy_nnz : light_nnz);
  }
  return coo.to_csr();
}

}  // namespace speck::gen

namespace speck::gen {

Csr kronecker(const Csr& a, const Csr& b) {
  const auto rows = static_cast<std::int64_t>(a.rows()) * b.rows();
  const auto cols = static_cast<std::int64_t>(a.cols()) * b.cols();
  SPECK_REQUIRE(rows <= std::numeric_limits<index_t>::max() &&
                    cols <= std::numeric_limits<index_t>::max(),
                "kronecker product dimensions overflow index_t");

  std::vector<offset_t> offsets;
  offsets.reserve(static_cast<std::size_t>(rows) + 1);
  offsets.push_back(0);
  std::vector<index_t> out_cols;
  out_cols.reserve(static_cast<std::size_t>(a.nnz()) * static_cast<std::size_t>(b.nnz()) /
                   std::max<std::size_t>(1, static_cast<std::size_t>(a.rows())));
  std::vector<value_t> out_vals;

  for (index_t ia = 0; ia < a.rows(); ++ia) {
    const auto a_cols = a.row_cols(ia);
    const auto a_vals = a.row_vals(ia);
    for (index_t ib = 0; ib < b.rows(); ++ib) {
      const auto b_cols = b.row_cols(ib);
      const auto b_vals = b.row_vals(ib);
      // Row (ia, ib): blocks ordered by ja, each sorted by jb -> sorted.
      for (std::size_t i = 0; i < a_cols.size(); ++i) {
        const auto base = static_cast<std::int64_t>(a_cols[i]) * b.cols();
        for (std::size_t j = 0; j < b_cols.size(); ++j) {
          out_cols.push_back(static_cast<index_t>(base + b_cols[j]));
          out_vals.push_back(a_vals[i] * b_vals[j]);
        }
      }
      offsets.push_back(static_cast<offset_t>(out_cols.size()));
    }
  }
  return Csr(static_cast<index_t>(rows), static_cast<index_t>(cols),
             std::move(offsets), std::move(out_cols), std::move(out_vals));
}

}  // namespace speck::gen
