// Synthetic sparse-matrix generators standing in for the SuiteSparse
// collection (DESIGN.md §1). Each generator targets one structural family
// the paper's evaluation exercises; all are deterministic given the seed.
#pragma once

#include <cstdint>

#include "matrix/csr.h"

namespace speck::gen {

/// Uniformly random columns, `nnz_per_row` per row (clamped to cols).
Csr random_uniform(index_t rows, index_t cols, index_t nnz_per_row,
                   std::uint64_t seed);

/// Banded matrix: entries uniformly random within a diagonal band of the
/// given half-width, `nnz_per_row` per row. FEM-stencil-like locality.
Csr banded(index_t n, index_t half_bandwidth, index_t nnz_per_row,
           std::uint64_t seed);

/// 5-point (2D Poisson) stencil on an nx x ny grid.
Csr stencil_2d(index_t nx, index_t ny);

/// 27-point (3D) stencil on an n^3 grid.
Csr stencil_3d(index_t n);

/// Scale-free graph: per-row degree follows a truncated power law with the
/// given exponent; columns drawn with preferential attachment so hub
/// columns exist too (email/web-graph-like).
Csr power_law(index_t rows, index_t cols, index_t avg_degree, double alpha,
              index_t max_degree, std::uint64_t seed);

/// Recursive-matrix (R-MAT) graph: scale gives 2^scale vertices.
Csr rmat(int scale, index_t edges_per_vertex, double a, double b, double c,
         std::uint64_t seed);

/// Block-diagonal matrix with dense blocks (power-grid / TSC_OPF-like:
/// enormous compaction factors).
Csr block_diagonal(index_t blocks, index_t block_size, double density,
                   std::uint64_t seed);

/// Rectangular LP-constraint-like matrix: far more columns than rows,
/// uniformly random short rows (stat96v2-like when multiplied as A*Aᵀ).
Csr rectangular_lp(index_t rows, index_t cols, index_t nnz_per_row,
                   std::uint64_t seed);

/// Mix of mostly single-entry rows with a few long rows; exercises the
/// direct-referencing path (paper §4.3 "Single entry rows of A").
Csr single_entry_mix(index_t rows, index_t cols, double single_fraction,
                     index_t long_row_nnz, std::uint64_t seed);

/// Matrix with strongly varying row lengths: `heavy_fraction` of the rows
/// get `heavy_nnz` entries, the rest get `light_nnz`. Exercises binning.
Csr skewed_rows(index_t rows, index_t cols, double heavy_fraction,
                index_t heavy_nnz, index_t light_nnz, std::uint64_t seed);

}  // namespace speck::gen

namespace speck::gen {

/// Kronecker product A ⊗ B: entry ((ia*rowsB+ib), (ja*colsB+jb)) = va*vb.
/// Generates large structured matrices from small seeds (Kronecker graphs).
Csr kronecker(const Csr& a, const Csr& b);

}  // namespace speck::gen
