// Named synthetic corpora standing in for the SuiteSparse collection.
//
// `common_corpus` mimics the 11 matrices of the paper's Table 4 / Fig. 8-11
// at reduced scale (same structural family, same relative characteristics:
// row-length profile, compaction factor, NZ locality).
// `evaluation_collection` is the larger mixed set driving the overall
// statistics (Table 3, Figs. 6/7).
#pragma once

#include <string>
#include <vector>

#include "matrix/csr.h"

namespace speck::gen {

/// One benchmark multiplication: C = A*B. For square inputs B == A
/// (paper: C = A*A); for rectangular inputs B is the precomputed transpose
/// (paper: C = A*Aᵀ).
struct CorpusEntry {
  std::string name;
  Csr a;
  Csr b;
  bool square = true;

  offset_t products() const;
};

/// The Table 4 stand-ins: webbase, hugebubbles, mario002, stat96v2,
/// email-Enron, cage13, 144, poisson3Da, QCD, harbor, TSC_OPF.
std::vector<CorpusEntry> common_corpus();

/// Mixed collection spanning structure families and sizes; `scale` >= 1
/// multiplies the matrix dimensions (1 keeps the full run under a minute
/// per algorithm on a laptop core).
std::vector<CorpusEntry> evaluation_collection(int scale = 1);

/// Small corpus used by unit/property tests (fast, diverse).
std::vector<CorpusEntry> test_corpus();

}  // namespace speck::gen
